// Membership/partnership maintenance — the self-healing half of the
// paper's §II node architecture, over real sockets.
//
// The simulator's control plane continuously re-partners nodes through
// mCache gossip; before this file, the live stack only ever LOST
// partners: a dead conn was dropped and its lanes orphaned, but nothing
// replenished the partner set, re-contacted the tracker, or noticed a
// silently-hung partner whose TCP connection stayed open. The
// maintenance loop closes that gap:
//
//   - liveness: a partner that has sent no frame (BM, ping, push —
//     anything) within the staleness deadline is torn down, exactly as
//     if its connection had errored. bmLoop's TypePing heartbeat makes
//     "no frame" equivalent to "hung", even for nodes with no buffers.
//   - replenishment: when the partner count falls below the low
//     watermark, candidates are dialed toward the target M, drawn from
//     the local mCache. The mCache is fed three ways: partner-request
//     address advertisements, TypeMCacheRequest/Reply gossip
//     piggybacked on live partnerships, and tracker re-Candidates calls
//     (which also re-register this node, healing tracker state after an
//     outage). Tracker retries ride the netboot client's
//     capped-exponential deterministic backoff.
//   - departure: Close announces TypeLeave to partners and Leave to the
//     tracker (see shutdown in node.go).
//
// Everything the loop does is observable through RecoveryStats for the
// log pipeline and the chaos harness.
package netpeer

import (
	"fmt"
	"time"

	"coolstream/internal/netboot"
	"coolstream/internal/protocol"
	"coolstream/internal/xrand"
)

// Bootstrap is the tracker surface the maintenance loop needs;
// *netboot.Client satisfies it directly.
type Bootstrap interface {
	Register(id int32, addr string) error
	Leave(id int32) error
	Candidates(n int, exclude int32) ([]netboot.Entry, error)
}

var _ Bootstrap = (*netboot.Client)(nil)

// mcacheEntry is one locally-cached membership candidate.
type mcacheEntry struct {
	addr string
	seen time.Time
}

// RecoveryStats counts self-healing actions for the log pipeline and
// the chaos harness. Read a consistent snapshot with Node.Recovery.
type RecoveryStats struct {
	// StaleTeardowns counts partners torn down by the liveness deadline
	// (hung conns — the connection was open but silent).
	StaleTeardowns int
	// PartnersReplaced counts successful replenishment dials.
	PartnersReplaced int
	// Rebootstraps counts tracker re-contact rounds (re-register +
	// Candidates) triggered by a depleted partner set.
	Rebootstraps int
	// BootstrapFailures counts re-contact rounds that failed even after
	// the client's retries — the tracker was down for the whole window.
	BootstrapFailures int
	// GossipSent counts TypeMCacheRequest frames sent to partners.
	GossipSent int
	// GossipMerged counts candidate entries merged from gossip replies.
	GossipMerged int
	// LeaseRenewals counts successful periodic tracker re-registrations
	// (lease renewals) — the keep-alive that stops the tracker's lease
	// expiry from evicting a live-but-quiet peer.
	LeaseRenewals int
	// PusherAborts counts abnormal pusher exits that sent the child a
	// teardown notice (see abortPusher).
	PusherAborts int
	// SlowPartnerTeardowns counts partnerships torn down because the
	// partner could not drain its bounded outbound queue (see
	// conn.enqueue in writer.go).
	SlowPartnerTeardowns int
	// BMFailTeardowns counts partnerships torn down by the BM loop
	// after persistent buffer-map send failures.
	BMFailTeardowns int
}

// ManagerConfig parameterises the maintenance loop.
type ManagerConfig struct {
	// TargetPartners is M — replenishment dials toward this count.
	TargetPartners int
	// MinPartners is the low watermark that triggers replenishment
	// (default: TargetPartners, i.e. heal any deficit).
	MinPartners int
	// Stale is the liveness deadline: a partner with no inbound frame
	// for this long is torn down (default: 8×BMPeriod, floor 2s).
	Stale time.Duration
	// Interval is the maintenance period (default: max(BMPeriod, 250ms)).
	Interval time.Duration
	// GossipWant is the entry count requested per mCache gossip
	// solicitation (default 8).
	GossipWant int
	// MCacheCap bounds the local membership cache (default 64).
	MCacheCap int
	// DialCooldown keeps a failed candidate out of replenishment
	// attempts for this long (default 5s).
	DialCooldown time.Duration
	// RenewEvery is the tracker lease-renewal period (default 10s —
	// a third of the registry's default 30s lease, so two renewals can
	// be lost before the lease lapses). Ignored when boot is nil.
	RenewEvery time.Duration
	// Seed drives the deterministic candidate shuffle.
	Seed uint64
}

func (c *ManagerConfig) applyDefaults(bmPeriod time.Duration) error {
	if c.TargetPartners <= 0 {
		return fmt.Errorf("netpeer: TargetPartners %d", c.TargetPartners)
	}
	if c.MinPartners <= 0 || c.MinPartners > c.TargetPartners {
		c.MinPartners = c.TargetPartners
	}
	if c.Stale <= 0 {
		c.Stale = 8 * bmPeriod
		if c.Stale < 2*time.Second {
			c.Stale = 2 * time.Second
		}
	}
	if c.Interval <= 0 {
		c.Interval = bmPeriod
		if c.Interval < 250*time.Millisecond {
			c.Interval = 250 * time.Millisecond
		}
	}
	if c.GossipWant <= 0 {
		c.GossipWant = 8
	}
	if c.MCacheCap <= 0 {
		c.MCacheCap = 64
	}
	if c.DialCooldown <= 0 {
		c.DialCooldown = 5 * time.Second
	}
	if c.RenewEvery <= 0 {
		c.RenewEvery = 10 * time.Second
	}
	return nil
}

// EnableMaintenance starts the membership/partnership maintenance loop.
// boot may be nil (no tracker: replenishment then relies on gossip
// alone). Call after Listen; the listen address is what re-registration
// advertises.
func (n *Node) EnableMaintenance(cfg ManagerConfig, boot Bootstrap) error {
	if err := cfg.applyDefaults(n.cfg.BMPeriod); err != nil {
		return err
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return fmt.Errorf("netpeer: node closed")
	}
	if n.boot != nil || n.mgr.TargetPartners > 0 {
		n.mu.Unlock()
		return fmt.Errorf("netpeer: maintenance already enabled")
	}
	n.mgr = cfg
	n.boot = boot
	n.selfAddr = n.Addr()
	n.mu.Unlock()

	// A stoppable boot client (both netboot clients) aborts any backoff
	// pause the moment the node shuts down, instead of sleeping it out.
	if s, ok := boot.(interface{ SetStop(<-chan struct{}) }); ok {
		s.SetStop(n.done)
	}

	rng := xrand.New(cfg.Seed ^ uint64(n.cfg.ID)*0x9e3779b97f4a7c15)
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		ticker := time.NewTicker(cfg.Interval)
		defer ticker.Stop()
		renew := time.NewTicker(cfg.RenewEvery)
		defer renew.Stop()
		for {
			select {
			case <-ticker.C:
				n.reapStalePartners(cfg)
				n.replenishPartners(cfg, rng)
			case <-renew.C:
				n.renewLease()
			case <-n.done:
				return
			}
		}
	}()
	return nil
}

// renewLease re-registers with the tracker to keep the lease alive: a
// peer with a full partner set never rebootstraps, and without this
// keep-alive the tracker's expiry would evict it even though it is
// perfectly healthy.
func (n *Node) renewLease() {
	n.mu.Lock()
	boot, selfAddr := n.boot, n.selfAddr
	n.mu.Unlock()
	if boot == nil {
		return
	}
	if boot.Register(n.cfg.ID, selfAddr) == nil {
		n.mu.Lock()
		n.rec.LeaseRenewals++
		n.mu.Unlock()
	}
}

// Recovery returns a snapshot of the self-healing counters.
func (n *Node) Recovery() RecoveryStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rec
}

// reapStalePartners tears down partners whose last inbound frame is
// older than the staleness deadline — the hung-conn case TCP errors
// never surface.
func (n *Node) reapStalePartners(cfg ManagerConfig) {
	now := time.Now()
	var victims []*conn
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	for id, cn := range n.conns {
		seen, ok := n.lastSeen[id]
		if !ok {
			// Registered before the lastSeen map existed for it: seed
			// now and give it a full window.
			n.lastSeen[id] = now
			continue
		}
		if now.Sub(seen) > cfg.Stale {
			victims = append(victims, cn)
		}
	}
	for _, cn := range victims {
		n.dropPartnerLocked(cn)
		// A hung peer's address must not be redialed immediately.
		delete(n.mcache, cn.peer)
		n.failedDial[cn.peer] = now
		n.rec.StaleTeardowns++
	}
	n.mu.Unlock()
	for _, cn := range victims {
		cn.c.Close() // wakes the conn's readLoop, which finds itself already dropped
	}
}

// replenishPartners dials mCache candidates toward the target partner
// count when it has fallen below the low watermark, soliciting gossip
// and re-contacting the tracker when the cache runs dry.
func (n *Node) replenishPartners(cfg ManagerConfig, rng *xrand.RNG) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	have := len(n.conns)
	if have >= cfg.MinPartners {
		n.mu.Unlock()
		return
	}
	need := cfg.TargetPartners - have
	cands := n.candidatesLocked(cfg)
	gossipTargets := n.gossipTargetsLocked()
	n.mu.Unlock()

	// Deterministic order for the shuffle: candidatesLocked returns
	// ascending IDs.
	rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })

	dialed := 0
	for _, cand := range cands {
		if dialed >= need {
			break
		}
		select {
		case <-n.done:
			return
		default:
		}
		if _, err := n.Connect(cand.addr); err != nil {
			n.mu.Lock()
			delete(n.mcache, cand.id)
			n.failedDial[cand.id] = time.Now()
			n.mu.Unlock()
			continue
		}
		dialed++
		n.mu.Lock()
		n.rec.PartnersReplaced++
		n.mu.Unlock()
	}
	if dialed >= need {
		return
	}

	// Still short: solicit gossip from live partners for the next round…
	for _, cn := range gossipTargets {
		if cn.send(protocol.Message{
			Type: protocol.TypeMCacheRequest, From: n.cfg.ID, To: cn.peer,
			Want: int16(cfg.GossipWant),
		}) == nil {
			n.mu.Lock()
			n.rec.GossipSent++
			n.mu.Unlock()
		}
	}
	// …and fall back to the tracker (with the client's own backoff).
	n.rebootstrap(cfg)
}

// candidate is one dialable replenishment option.
type candidate struct {
	id   int32
	addr string
}

// candidatesLocked returns dialable mCache entries — not self, not an
// existing partner, not in the failed-dial cooldown — in ascending ID
// order (so the caller's seeded shuffle is deterministic).
func (n *Node) candidatesLocked(cfg ManagerConfig) []candidate {
	now := time.Now()
	out := make([]candidate, 0, len(n.mcache))
	for id, e := range n.mcache {
		if id == n.cfg.ID || e.addr == "" || e.addr == n.selfAddr {
			continue
		}
		if _, partnered := n.conns[id]; partnered {
			continue
		}
		if t, bad := n.failedDial[id]; bad {
			if now.Sub(t) < cfg.DialCooldown {
				continue
			}
			delete(n.failedDial, id)
		}
		out = append(out, candidate{id: id, addr: e.addr})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].id < out[j-1].id; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func (n *Node) gossipTargetsLocked() []*conn {
	out := make([]*conn, 0, len(n.conns))
	for _, cn := range n.conns {
		out = append(out, cn)
	}
	return out
}

// rebootstrap re-contacts the tracker: re-register (heals tracker state
// lost to an outage or restart), then fetch fresh candidates into the
// mCache. Counted per round, not per HTTP attempt — the netboot client
// retries internally.
func (n *Node) rebootstrap(cfg ManagerConfig) {
	n.mu.Lock()
	boot, selfAddr := n.boot, n.selfAddr
	n.mu.Unlock()
	if boot == nil {
		return
	}
	n.mu.Lock()
	n.rec.Rebootstraps++
	n.mu.Unlock()
	regErr := boot.Register(n.cfg.ID, selfAddr)
	entries, err := boot.Candidates(cfg.TargetPartners*2, n.cfg.ID)
	if err != nil || regErr != nil {
		n.mu.Lock()
		n.rec.BootstrapFailures++
		n.mu.Unlock()
	}
	for _, e := range entries {
		n.mcacheAdd(e.ID, e.Addr)
	}
}

// mcacheAdd records one candidate, evicting the oldest entry when the
// cache is full.
func (n *Node) mcacheAdd(id int32, addr string) {
	if addr == "" || id == n.cfg.ID {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	limit := n.mgr.MCacheCap
	if limit <= 0 {
		limit = 64
	}
	if _, ok := n.mcache[id]; !ok && len(n.mcache) >= limit {
		var oldest int32
		var oldestAt time.Time
		first := true
		for oid, e := range n.mcache {
			if first || e.seen.Before(oldestAt) {
				oldest, oldestAt, first = oid, e.seen, false
			}
		}
		delete(n.mcache, oldest)
	}
	n.mcache[id] = mcacheEntry{addr: addr, seen: time.Now()}
}

// mcacheMerge folds gossip-reply entries into the cache.
func (n *Node) mcacheMerge(entries []protocol.PeerEntry) {
	merged := 0
	for _, e := range entries {
		if e.Addr == "" || e.ID == n.cfg.ID {
			continue
		}
		n.mcacheAdd(e.ID, e.Addr)
		merged++
	}
	if merged > 0 {
		n.mu.Lock()
		n.rec.GossipMerged += merged
		n.mu.Unlock()
	}
}

// buildMCacheReply answers a partner's gossip solicitation with up to
// want known candidates (mCache plus partners with known addresses),
// excluding the requester itself.
func (n *Node) buildMCacheReply(requester int32, want int) (protocol.Message, bool) {
	if want <= 0 {
		want = 8
	}
	n.mu.Lock()
	entries := make([]protocol.PeerEntry, 0, want)
	ids := make([]int32, 0, len(n.mcache))
	for id := range n.mcache {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	partners := int16(len(n.conns))
	for _, id := range ids {
		if len(entries) >= want {
			break
		}
		if id == requester {
			continue
		}
		entries = append(entries, protocol.PeerEntry{ID: id, Addr: n.mcache[id].addr})
	}
	// Advertise ourselves too: the requester is a partner already, but
	// a relayed reply may reach peers that are not.
	if n.selfAddr != "" && len(entries) < want {
		entries = append(entries, protocol.PeerEntry{
			ID: n.cfg.ID, Addr: n.selfAddr, PartnerCount: partners,
		})
	}
	n.mu.Unlock()
	if len(entries) == 0 {
		return protocol.Message{}, false
	}
	return protocol.Message{
		Type: protocol.TypeMCacheReply, From: n.cfg.ID, To: requester, Entries: entries,
	}, true
}

// MCacheSize returns the current membership-cache population
// (observability for tests and the chaos harness).
func (n *Node) MCacheSize() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.mcache)
}
