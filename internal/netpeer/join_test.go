package netpeer

import (
	"testing"
	"time"

	"coolstream/internal/faults"
	"coolstream/internal/netboot"
	"coolstream/internal/sim"
)

// joinTracker spins up a binary tracker and returns its address plus a
// client factory.
func joinTracker(t *testing.T, reg *netboot.Registry) func(id int32) *netboot.TCPClient {
	t.Helper()
	srv := netboot.NewTCPServer(reg, netboot.TCPServerConfig{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return func(id int32) *netboot.TCPClient {
		c := netboot.NewTCPClient(addr)
		c.SetTimeout(2 * time.Second)
		t.Cleanup(func() { c.Close() })
		return c
	}
}

// startTestSource boots a streaming source registered with the tracker.
func startTestSource(t *testing.T, cfg Config, bc *netboot.TCPClient) *Node {
	t.Helper()
	src := mustNode(t, cfg)
	addr := mustListen(t, src)
	if err := src.StartSource(); err != nil {
		t.Fatal(err)
	}
	if err := bc.Register(0, addr); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond) // let the live edge advance
	return src
}

// TestJoinAgainstLiveOverlay joins a fresh peer through the tracker
// into a streaming overlay and requires a first block inside the
// deadline.
func TestJoinAgainstLiveOverlay(t *testing.T) {
	reg := netboot.NewRegistry(netboot.RegistryConfig{Seed: 1})
	client := joinTracker(t, reg)
	startTestSource(t, testConfig(0, 4*testLayout.RateBps), client(0))

	j := mustNode(t, testConfig(7, 0))
	selfAddr := mustListen(t, j)
	st, err := j.Join(JoinConfig{
		Boot: client(7), SelfAddr: selfAddr, Register: true,
		TargetPartners: 1, Deadline: 6 * time.Second,
	})
	if err != nil {
		t.Fatalf("join: %v (stats %+v)", err, st)
	}
	if !st.Joined || st.Partners < 1 {
		t.Fatalf("join stats %+v", st)
	}
	if st.TimeToFirstBlock <= 0 || st.TimeToPartner <= 0 {
		t.Fatalf("milestones not stamped: %+v", st)
	}
	// Registration happened: the tracker can now hand this peer out.
	if reg.Count() != 2 {
		t.Fatalf("tracker count %d, want 2", reg.Count())
	}
}

// TestJoinWalksAlternates fills the only tracker-known peer and checks
// the joiner reaches the overlay through the reject's alternates.
func TestJoinWalksAlternates(t *testing.T) {
	reg := netboot.NewRegistry(netboot.RegistryConfig{Seed: 2})
	client := joinTracker(t, reg)
	srcCfg := testConfig(0, 8*testLayout.RateBps)
	srcCfg.MaxPartners = 1
	src := startTestSource(t, srcCfg, client(0))

	// A warm peer takes the source's only partner slot and relays.
	warm := mustNode(t, testConfig(1, 8*testLayout.RateBps))
	warmAddr := mustListen(t, warm)
	wst, err := warm.Join(JoinConfig{
		Boot: client(1), SelfAddr: warmAddr, Register: false,
		TargetPartners: 1, Deadline: 6 * time.Second,
	})
	if err != nil {
		t.Fatalf("warm join: %v (stats %+v)", err, wst)
	}
	// Only the source stays registered: the joiner's sole tracker
	// candidate is full, so its path runs through the alternates.
	if len(src.Partners()) != 1 {
		t.Fatalf("source partners %v", src.Partners())
	}

	j := mustNode(t, testConfig(9, 0))
	selfAddr := mustListen(t, j)
	st, err := j.Join(JoinConfig{
		Boot: client(9), SelfAddr: selfAddr, Register: false,
		TargetPartners: 1, Deadline: 8 * time.Second,
	})
	if err != nil {
		t.Fatalf("join via alternates: %v (stats %+v)", err, st)
	}
	if st.Rejects == 0 || st.AlternatesLearned == 0 {
		t.Fatalf("join never exercised the reject path: %+v", st)
	}
	if st.Retries == 0 {
		t.Fatalf("reject did not count as a retry: %+v", st)
	}
}

// TestJoinHonorsTrackerShed heats a shedding tracker and verifies the
// joiner observes the unavailability, waits out retry-after hints, and
// still joins once the meter decays.
func TestJoinHonorsTrackerShed(t *testing.T) {
	reg := netboot.NewRegistry(netboot.RegistryConfig{Seed: 3})
	client := joinTracker(t, reg)
	startTestSource(t, testConfig(0, 4*testLayout.RateBps), client(0))

	reg.EnableShedding(netboot.ShedConfig{
		MaxOpsPerSec: 50, RetryAfter: 300 * time.Millisecond,
	})
	for i := 0; i < 200; i++ {
		reg.BeginOp()()
	}

	j := mustNode(t, testConfig(11, 0))
	selfAddr := mustListen(t, j)
	st, err := j.Join(JoinConfig{
		Boot: client(11), SelfAddr: selfAddr, Register: true,
		TargetPartners: 1, Deadline: 10 * time.Second,
		Backoff: faults.Backoff{Base: 20 * sim.Millisecond, Cap: 80 * sim.Millisecond},
	})
	if err != nil {
		t.Fatalf("join through shed tracker: %v (stats %+v)", err, st)
	}
	if st.TrackerUnavailable == 0 {
		t.Fatalf("shed tracker never observed: %+v", st)
	}
	if st.RetryAfterWaits == 0 {
		t.Fatalf("retry-after hint never floored a pause: %+v", st)
	}
}
