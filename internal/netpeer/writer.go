package netpeer

import (
	"errors"
	"sync"
	"time"

	"coolstream/internal/protocol"
)

// Batched partner writer. Each live partner connection owns one writer
// goroutine draining a bounded outbound queue of pre-encoded frames.
// Senders (BM loop, pushers, control handlers) enqueue and return
// immediately; the writer coalesces whatever has accumulated into a
// single Write call, bounded by a flush budget: at most FlushBytes per
// write, lingering at most FlushDelay for more frames to arrive. Under
// load the linger never triggers (the queue is never empty), so
// throughput costs one syscall per ~FlushBytes instead of one per
// frame; when idle a frame reaches the wire within FlushDelay.
//
// Backpressure contract: the queue is bounded by QueueBytes. A partner
// that cannot drain its own traffic fills the queue, and the overflow
// tears the partnership down (errSlowPartner) rather than buffering
// without bound or blocking the sender's control loops — the same
// fate a stale partner meets, discovered sooner.

const (
	defaultFlushBytes      = 64 * 1024
	defaultFlushDelay      = 2 * time.Millisecond
	defaultQueueBytes      = 256 * 1024
	defaultBMKeyframeEvery = 16
	// bmAckGrace is how many deltas may follow an unacknowledged
	// keyframe before the sender re-keys (the ack closes the loop on
	// receivers that missed the keyframe's epoch).
	bmAckGrace = 4
	// bmFailLimit is how many consecutive BM send failures a partner
	// may accumulate before the BM loop tears the partnership down.
	bmFailLimit = 3
	// fanCacheCap bounds the shared fan-out frame cache (see fanFrame).
	fanCacheCap = 128
)

var (
	errSlowPartner = errors.New("netpeer: slow partner: outbound queue overflow")
	errConnClosed  = errors.New("netpeer: connection closed")
)

// outFrame is one encoded frame awaiting flush.
type outFrame struct {
	buf []byte
	// bp is the pool box to return after flushing; nil for shared
	// fan-out buffers, which are immutable and never recycled.
	bp *[]byte
}

// encPool recycles per-frame encode buffers across all connections.
var encPool = sync.Pool{New: func() any { b := make([]byte, 0, 2048); return &b }}

func (f *outFrame) release() {
	if f.bp != nil {
		*f.bp = f.buf[:0]
		encPool.Put(f.bp)
		f.bp = nil
	}
	f.buf = nil
}

// startWriter attaches the writer goroutine to cn. Called under n.mu by
// register, before the conn is visible to any sender, so writerOn needs
// no further synchronisation.
func (cn *conn) startWriter() {
	cn.qcond = sync.NewCond(&cn.qmu)
	cn.writerOn = true
	cn.n.wg.Add(1)
	go cn.writerLoop()
}

// enqueueMsg encodes m into a pooled buffer and queues it for the
// writer.
func (cn *conn) enqueueMsg(m protocol.Message) error {
	bp := encPool.Get().(*[]byte)
	buf, err := protocol.AppendFrame((*bp)[:0], m)
	if err != nil {
		encPool.Put(bp)
		return err
	}
	*bp = buf
	return cn.enqueue(outFrame{buf: buf, bp: bp}, m.Type)
}

// enqueueShared queues an immutable pre-encoded frame shared across
// partners (the fan-out block path).
func (cn *conn) enqueueShared(buf []byte) error {
	return cn.enqueue(outFrame{buf: buf}, protocol.TypeBlockPush)
}

func (cn *conn) enqueue(f outFrame, typ protocol.MsgType) error {
	size := len(f.buf)
	cn.qmu.Lock()
	if cn.qErr != nil {
		err := cn.qErr
		cn.qmu.Unlock()
		f.release()
		return err
	}
	if cn.qBytes+size > cn.n.cfg.QueueBytes {
		cn.qErr = errSlowPartner
		cn.qcond.Broadcast()
		cn.qmu.Unlock()
		f.release()
		// Wake the readLoop, which owns partner teardown.
		cn.c.Close()
		cn.n.mu.Lock()
		cn.n.rec.SlowPartnerTeardowns++
		cn.n.mu.Unlock()
		return errSlowPartner
	}
	cn.q = append(cn.q, f)
	cn.qBytes += size
	cn.qcond.Signal()
	cn.qmu.Unlock()
	cn.n.stats.countFrame(typ, size)
	return nil
}

// closeQueue wakes and retires the writer. Safe on conns without one.
func (cn *conn) closeQueue(err error) {
	if !cn.writerOn {
		return
	}
	cn.qmu.Lock()
	if cn.qErr == nil {
		cn.qErr = err
	}
	cn.qcond.Broadcast()
	cn.qmu.Unlock()
}

// dropQueueLocked releases every queued frame (qmu held).
func (cn *conn) dropQueueLocked() {
	for i := range cn.q {
		cn.q[i].release()
	}
	cn.q = nil
	cn.qBytes = 0
}

func (cn *conn) writerLoop() {
	n := cn.n
	defer n.wg.Done()
	flushBytes := n.cfg.FlushBytes
	flushDelay := n.cfg.FlushDelay
	flush := make([]byte, 0, flushBytes)
	for {
		cn.qmu.Lock()
		for len(cn.q) == 0 && cn.qErr == nil {
			cn.qcond.Wait()
		}
		if cn.qErr != nil {
			cn.dropQueueLocked()
			cn.qmu.Unlock()
			return
		}
		if flushDelay > 0 && cn.qBytes < flushBytes {
			// Linger briefly so a burst in flight coalesces into this
			// write instead of the next one.
			cn.qmu.Unlock()
			time.Sleep(flushDelay)
			cn.qmu.Lock()
			if cn.qErr != nil {
				cn.dropQueueLocked()
				cn.qmu.Unlock()
				return
			}
		}
		flush = flush[:0]
		taken := 0
		for i := range cn.q {
			f := &cn.q[i]
			// Always take at least one frame, even one above the budget.
			if taken > 0 && len(flush)+len(f.buf) > flushBytes {
				break
			}
			flush = append(flush, f.buf...)
			f.release()
			taken++
		}
		rest := copy(cn.q, cn.q[taken:])
		clear(cn.q[rest:])
		cn.q = cn.q[:rest]
		cn.qBytes -= len(flush)
		cn.qmu.Unlock()

		// wmu serialises against direct teardown-path writes (Leave,
		// abort notices) so frames never interleave mid-stream.
		cn.wmu.Lock()
		err := cn.c.SetWriteDeadline(time.Now().Add(cn.wt))
		if err == nil {
			_, err = cn.c.Write(flush)
		}
		cn.wmu.Unlock()
		if err != nil {
			cn.qmu.Lock()
			if cn.qErr == nil {
				cn.qErr = err
			}
			cn.dropQueueLocked()
			cn.qcond.Broadcast()
			cn.qmu.Unlock()
			cn.c.Close()
			return
		}
		n.stats.writeCalls.Add(1)
		n.stats.bytesSent.Add(uint64(len(flush)))
	}
}

// fanKey identifies one block for the shared fan-out encoder.
type fanKey struct {
	j   int
	seq int64
}

// fanFrame returns the shared encoded BlockPush frame for block (j,
// seq): a source (or relay) pushing one block to N children encodes it
// once and every child's writer enqueues the same immutable buffer.
// The cache is a small ring — pushers all work near the live edge, so
// entries are reused within a block period and evicted shortly after.
func (n *Node) fanFrame(j int, seq int64) ([]byte, error) {
	key := fanKey{j: j, seq: seq}
	n.fanMu.Lock()
	if buf, ok := n.fanCache[key]; ok {
		n.fanMu.Unlock()
		n.stats.fanShared.Add(1)
		return buf, nil
	}
	buf, err := protocol.AppendFrame(nil, protocol.Message{
		// To is -1: the frame is addressed to every subscribed child;
		// receivers identify the push by (SubStream, StartSeq) alone.
		Type: protocol.TypeBlockPush, From: n.cfg.ID, To: -1,
		SubStream: int16(j), StartSeq: seq, Payload: n.payload,
	})
	if err != nil {
		n.fanMu.Unlock()
		return nil, err
	}
	if n.fanCache == nil {
		n.fanCache = make(map[fanKey][]byte, fanCacheCap)
	}
	if len(n.fanOrder) < fanCacheCap {
		n.fanOrder = append(n.fanOrder, key)
	} else {
		delete(n.fanCache, n.fanOrder[n.fanPos])
		n.fanOrder[n.fanPos] = key
		n.fanPos = (n.fanPos + 1) % fanCacheCap
	}
	n.fanCache[key] = buf
	n.fanMu.Unlock()
	n.stats.fanEncodes.Add(1)
	return buf, nil
}
