// The join engine: a newcomer's bounded-retry path from "knows the
// tracker" to "first block received" (§III-B join, §VI flash crowd).
// The paper's Fig. 10 measures exactly this loop — how many retries a
// joining client needs before it succeeds, and how that distribution
// stretches when a flash crowd hits. The engine walks tracker
// candidates and reject-alternates with deterministic backoff, honours
// the tracker's retry-after hints, and instruments every step so the
// surge harness can report a retries-to-join distribution comparable
// to the fluid model's Fig10c experiment.
package netpeer

import (
	"errors"
	"fmt"
	"time"

	"coolstream/internal/faults"
	"coolstream/internal/netboot"
	"coolstream/internal/protocol"
	"coolstream/internal/sim"
)

// JoinConfig drives one node's join attempt.
type JoinConfig struct {
	// Boot is the tracker surface (required).
	Boot Bootstrap
	// SelfAddr is this node's listen address, registered with the
	// tracker when Register is set.
	SelfAddr string
	// Register makes the join loop register with the tracker first
	// (retrying through overload like everything else). Leave it unset
	// when the caller registers separately.
	Register bool
	// TargetPartners is how many partnerships to establish before
	// subscribing lanes (default 3, floor 1).
	TargetPartners int
	// CandidatesPerAsk sizes each tracker candidates query (default 8).
	CandidatesPerAsk int
	// MaxAttempts bounds partner dial attempts (default 16).
	MaxAttempts int
	// Backoff paces retry rounds (default 100ms..800ms, jitter 0.5).
	// The tracker's retry-after hint floors each pause.
	Backoff faults.Backoff
	// Deadline bounds the whole join, dial through first block
	// (default 8s).
	Deadline time.Duration
	// Shift is the Tp-shifted join position behind the best advertised
	// live edge (default 3 blocks per lane).
	Shift int64
	// SubscribeGrace is how long a lane subscription may stay silent
	// before the engine re-plans it onto another partner (default
	// 250ms) — the recovery from an UploadSlots refusal.
	SubscribeGrace time.Duration
}

func (c *JoinConfig) applyDefaults() {
	if c.TargetPartners <= 0 {
		c.TargetPartners = 3
	}
	if c.CandidatesPerAsk <= 0 {
		c.CandidatesPerAsk = 8
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 16
	}
	if !c.Backoff.Enabled() {
		c.Backoff = faults.Backoff{
			Base: 100 * sim.Millisecond, Cap: 800 * sim.Millisecond, JitterFrac: 0.5,
		}
	}
	if c.Deadline <= 0 {
		c.Deadline = 8 * time.Second
	}
	if c.Shift <= 0 {
		c.Shift = 3
	}
	if c.SubscribeGrace <= 0 {
		c.SubscribeGrace = 250 * time.Millisecond
	}
}

// JoinStats instruments one join attempt — the real-socket counterpart
// of the fluid model's retries-to-join measurement (paper Fig. 10).
type JoinStats struct {
	// Attempts counts partner dials; FailedAttempts the unsuccessful
	// ones (I/O failures and admission rejects).
	Attempts       int `json:"attempts"`
	FailedAttempts int `json:"failed_attempts"`
	// Retries is the Fig. 10 quantity: how many times the joiner had to
	// try again — failed dials plus tracker-unavailable rounds.
	Retries int `json:"retries"`
	// Rejects counts admission rejects among the failures;
	// AlternatesLearned the redirect candidates they carried.
	Rejects           int `json:"rejects"`
	AlternatesLearned int `json:"alternates_learned"`
	// TrackerAsks counts candidate queries; TrackerUnavailable the ones
	// shed by the overloaded tracker; RetryAfterWaits the pauses whose
	// length came from a server retry-after hint rather than the local
	// backoff schedule.
	TrackerAsks        int `json:"tracker_asks"`
	TrackerUnavailable int `json:"tracker_unavailable"`
	RetryAfterWaits    int `json:"retry_after_waits"`
	// LaneRetries counts lane subscriptions re-planned onto another
	// partner after staying silent (UploadSlots refusals surface here).
	LaneRetries int `json:"lane_retries"`
	// Partners is the partnership count when the join settled.
	Partners int `json:"partners"`
	// Joined reports overall success: at least one partner and a first
	// block within the deadline.
	Joined bool `json:"joined"`
	// TimeToPartner and TimeToFirstBlock stamp the two join milestones
	// (zero when never reached).
	TimeToPartner    time.Duration `json:"time_to_partner_ns"`
	TimeToFirstBlock time.Duration `json:"time_to_first_block_ns"`
}

// Join runs the bounded-retry join loop: register (optionally), walk
// tracker candidates and reject-alternates until TargetPartners
// partnerships exist (or the attempt budget is spent), then initialise
// buffers at the Tp-shifted position and subscribe lanes — re-planning
// refused lanes — until the first block lands. The returned stats are
// meaningful even on error. Join returns early when the node is closed.
func (n *Node) Join(cfg JoinConfig) (JoinStats, error) {
	cfg.applyDefaults()
	var st JoinStats
	if cfg.Boot == nil {
		return st, fmt.Errorf("netpeer: join needs a Bootstrap")
	}
	start := time.Now()
	deadline := start.Add(cfg.Deadline)

	// --- Phase 1: partnerships. ---
	type cand struct {
		id   int32
		addr string
	}
	var queue []cand
	seen := map[int32]bool{n.cfg.ID: true}
	enqueue := func(id int32, addr string) bool {
		if addr == "" || addr == n.Addr() || seen[id] {
			return false
		}
		seen[id] = true
		queue = append(queue, cand{id: id, addr: addr})
		return true
	}
	registered := !cfg.Register
	// dialNext pops one candidate (asking the tracker when the queue is
	// dry) and dials it, folding rejects' alternates back into the
	// queue. It reports whether it made progress; lastErr carries the
	// failure (nil for an admission reject — a redirect, not a failure
	// mode worth a pause).
	var lastErr error
	dialNext := func() bool {
		lastErr = nil
		if len(queue) == 0 {
			st.TrackerAsks++
			cands, err := cfg.Boot.Candidates(cfg.CandidatesPerAsk, n.cfg.ID)
			if err != nil {
				if errors.Is(err, netboot.ErrUnavailable) {
					st.TrackerUnavailable++
				}
				lastErr = err
				return false
			}
			for _, e := range cands {
				enqueue(e.ID, e.Addr)
			}
			if len(queue) == 0 {
				return false
			}
		}
		c := queue[0]
		queue = queue[1:]
		st.Attempts++
		_, err := n.Connect(c.addr)
		if err == nil {
			return true
		}
		st.FailedAttempts++
		var rej *RejectedError
		if errors.As(err, &rej) {
			st.Rejects++
			st.Retries++
			for _, e := range rej.Alternates {
				if enqueue(e.ID, e.Addr) {
					st.AlternatesLearned++
				}
			}
			return true
		}
		lastErr = err
		return true
	}
	round := 0
	pause := func(err error) bool {
		round++
		st.Retries++
		d := cfg.Backoff.Duration(round, uint64(uint32(n.cfg.ID)))
		var ue *netboot.UnavailableError
		if errors.As(err, &ue) && ue.RetryAfter > d {
			d = ue.RetryAfter
			st.RetryAfterWaits++
		}
		select {
		case <-time.After(d):
			return true
		case <-n.done:
			return false
		}
	}
	for time.Now().Before(deadline) && len(n.Partners()) < cfg.TargetPartners {
		select {
		case <-n.done:
			return st, fmt.Errorf("netpeer: join aborted: node closed")
		default:
		}
		if !registered {
			if err := cfg.Boot.Register(n.cfg.ID, cfg.SelfAddr); err != nil {
				if errors.Is(err, netboot.ErrUnavailable) {
					st.TrackerUnavailable++
				}
				if !pause(err) {
					return st, fmt.Errorf("netpeer: join aborted: node closed")
				}
				continue
			}
			registered = true
		}
		if st.Attempts >= cfg.MaxAttempts {
			break
		}
		progressed := dialNext()
		if progressed && lastErr == nil {
			continue
		}
		if !pause(lastErr) {
			return st, fmt.Errorf("netpeer: join aborted: node closed")
		}
		if !progressed && lastErr == nil {
			// The tracker had nothing new: re-open everyone we have
			// already tried (they may have shed load since).
			for id := range seen {
				if id != n.cfg.ID {
					delete(seen, id)
				}
			}
		}
	}
	st.Partners = len(n.Partners())
	if st.Partners == 0 {
		return st, fmt.Errorf("netpeer: join failed: no partners after %d attempts", st.Attempts)
	}
	st.TimeToPartner = time.Since(start)

	// --- Phase 2: buffers and lanes. ---
	// The edge wait is capped well under the deadline: when no partner
	// advertises progress (a clique of fellow joiners), the lane phase
	// below must still get its chance to widen the partner set.
	edgeWait := time.Until(deadline)
	if edgeWait > 2*time.Second {
		edgeWait = 2 * time.Second
	}
	startSeq := n.waitForJoinStart(cfg.Shift, edgeWait)
	if err := n.InitBuffers(startSeq); err != nil {
		return st, err
	}
	k := n.cfg.Layout.K
	laneTried := make([]map[int32]bool, k)
	laneAssigned := make([]bool, k)
	laneMark := make([]int64, k)  // lane progress at the last round
	laneStalled := make([]int, k) // consecutive progress-free rounds
	for j := range laneTried {
		laneTried[j] = map[int32]bool{}
		laneMark[j] = -1
	}
	dryRounds := 0
	for {
		for j := 0; j < k; j++ {
			if pid := n.LaneParent(j); pid >= 0 {
				// Assigned: verify the parent actually delivers. A parent
				// can accept the subscription and then sit on it forever —
				// its pusher waits for blocks it does not have (another
				// joiner still syncing, or a lane its own parent starved).
				if cur := n.Latest(j); cur > laneMark[j] {
					laneMark[j], laneStalled[j] = cur, 0
					continue
				}
				laneStalled[j]++
				if laneStalled[j] < 2 {
					continue
				}
				// Two silent rounds: release the lane and rotate.
				n.unsubscribeLane(pid, j)
				laneTried[j][pid] = true
				laneStalled[j] = 0
			}
			pid, ok := n.pickLaneParent(j, laneTried[j])
			if !ok {
				// Every partner refused (or stalled) this lane recently;
				// forgive and rotate again next round.
				laneTried[j] = map[int32]bool{}
				continue
			}
			laneTried[j][pid] = true
			if laneAssigned[j] {
				st.LaneRetries++
			}
			laneAssigned[j] = true
			n.SubscribeTracked(pid, j, startSeq)
		}
		select {
		case <-time.After(cfg.SubscribeGrace):
		case <-n.done:
			return st, fmt.Errorf("netpeer: join aborted: node closed")
		}
		received := n.Stats().BlocksReceived
		if received > 0 {
			st.Joined = true
			st.TimeToFirstBlock = time.Since(start)
			st.Partners = len(n.Partners())
			return st, nil
		}
		if !time.Now().Before(deadline) {
			st.Partners = len(n.Partners())
			return st, fmt.Errorf("netpeer: join timed out waiting for first block")
		}
		// Starvation escape: every partner we have is dry (a crowd of
		// fellow joiners can partner each other into a blockless clique).
		// Widen the partner set instead of rotating forever.
		dryRounds++
		if dryRounds >= 2 && st.Attempts < cfg.MaxAttempts {
			if dialNext() {
				dryRounds = 0
			}
		}
	}
}

// unsubscribeLane releases lane j from peer: a teardown notice stops
// the parent's pusher and the local orphan makes the lane assignable
// again.
func (n *Node) unsubscribeLane(peer int32, j int) {
	if cn := n.connOf(peer); cn != nil {
		cn.send(protocol.Message{
			Type: protocol.TypeUnsubscribe, From: n.cfg.ID, To: peer, SubStream: int16(j),
		})
	}
	n.orphanLaneFrom(peer, j)
}

// waitForJoinStart polls partner buffer maps for an advertised live
// edge and returns the shift-adjusted join position (0 if nothing was
// advertised within the wait — the subscription then starts at the
// stream head, which only a fresh overlay has).
func (n *Node) waitForJoinStart(shift int64, wait time.Duration) int64 {
	deadline := time.Now().Add(wait)
	for {
		var start int64 = -1
		for _, pid := range n.Partners() {
			if bm, ok := n.PartnerBM(pid); ok && bm.MaxLatest() > shift {
				if s := bm.MaxLatest() - shift; s > start {
					start = s
				}
			}
		}
		if start >= 0 {
			return start
		}
		if !time.Now().Before(deadline) {
			return 0
		}
		select {
		case <-time.After(50 * time.Millisecond):
		case <-n.done:
			return 0
		}
	}
}

// pickLaneParent chooses the partner advertising the most progress on
// lane j among those not yet tried for it (falling back across all
// partners with any BM lane coverage).
func (n *Node) pickLaneParent(j int, tried map[int32]bool) (int32, bool) {
	var best int32
	var bestLatest int64 = -1
	found := false
	for _, pid := range n.Partners() {
		if tried[pid] {
			continue
		}
		latest := int64(0)
		if bm, ok := n.PartnerBM(pid); ok && bm.K() > j {
			latest = bm.Latest[j]
		}
		if !found || latest > bestLatest {
			best, bestLatest, found = pid, latest, true
		}
	}
	return best, found
}
