package netpeer

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"coolstream/internal/protocol"
)

// TestMaxPartnersRejectWithAlternates fills a capped node's partner
// set and checks the next joiner is refused with mCache alternates —
// a redirect, not a dead end — and that both ends count it.
func TestMaxPartnersRejectWithAlternates(t *testing.T) {
	full := testConfig(1, 0)
	full.MaxPartners = 2
	target := mustNode(t, full)
	addr := mustListen(t, target)

	// Two partners fill the cap; each advertises its listen address,
	// seeding the target's mCache with dialable alternates.
	var partnerAddrs []string
	for id := int32(2); id <= 3; id++ {
		p := mustNode(t, testConfig(id, 0))
		partnerAddrs = append(partnerAddrs, mustListen(t, p))
		if _, err := p.Connect(addr); err != nil {
			t.Fatalf("partner %d: %v", id, err)
		}
	}
	waitFor(t, 2*time.Second, func() bool { return len(target.Partners()) == 2 },
		"cap never filled")

	joiner := mustNode(t, testConfig(9, 0))
	mustListen(t, joiner)
	_, err := joiner.Connect(addr)
	var rej *RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("want *RejectedError, got %v", err)
	}
	if rej.Peer != 1 {
		t.Fatalf("rejecting peer %d, want 1", rej.Peer)
	}
	if len(rej.Alternates) != 2 {
		t.Fatalf("alternates %v, want the 2 partners", rej.Alternates)
	}
	for _, e := range rej.Alternates {
		if e.Addr != partnerAddrs[0] && e.Addr != partnerAddrs[1] {
			t.Fatalf("alternate %v not a known partner address", e)
		}
		if e.ID == 9 || e.ID == 1 {
			t.Fatalf("alternate %v names the requester or the rejecting node", e)
		}
	}
	if len(target.Partners()) != 2 {
		t.Fatalf("partner set %v grew past the cap", target.Partners())
	}
	if got := target.Admission(); got.PartnersRejected != 1 || got.PartnersAdmitted != 2 {
		t.Fatalf("target admission %+v", got)
	}
	if got := joiner.Admission(); got.RejectsReceived != 1 {
		t.Fatalf("joiner admission %+v", got)
	}
	// The alternates were merged: the joiner can dial one directly.
	if _, err := joiner.Connect(rej.Alternates[0].Addr); err != nil {
		t.Fatalf("alternate dial: %v", err)
	}
}

// TestMaxPartnersConcurrentDials storms a capped node with concurrent
// handshakes: the reservation must never let the set overshoot, and
// every loser must see a typed reject.
func TestMaxPartnersConcurrentDials(t *testing.T) {
	capped := testConfig(1, 0)
	capped.MaxPartners = 4
	target := mustNode(t, capped)
	addr := mustListen(t, target)

	const dialers = 16
	var wg sync.WaitGroup
	var mu sync.Mutex
	accepted, rejected := 0, 0
	for i := 0; i < dialers; i++ {
		p := mustNode(t, testConfig(int32(100+i), 0))
		wg.Add(1)
		go func(p *Node) {
			defer wg.Done()
			_, err := p.Connect(addr)
			mu.Lock()
			defer mu.Unlock()
			var rej *RejectedError
			switch {
			case err == nil:
				accepted++
			case errors.As(err, &rej):
				rejected++
			default:
				t.Errorf("unexpected connect error: %v", err)
			}
		}(p)
	}
	wg.Wait()
	if accepted != 4 || rejected != dialers-4 {
		t.Fatalf("accepted %d rejected %d, want 4/%d", accepted, rejected, dialers-4)
	}
	if got := len(target.Partners()); got != 4 {
		t.Fatalf("partner set %d, want 4", got)
	}
}

// TestExistingPartnerExemptFromCap verifies a reconnect by a current
// partner passes admission even with the cap full — the new conn
// replaces the old one, it does not grow the set.
func TestExistingPartnerExemptFromCap(t *testing.T) {
	capped := testConfig(1, 0)
	capped.MaxPartners = 1
	target := mustNode(t, capped)
	addr := mustListen(t, target)

	p := mustNode(t, testConfig(2, 0))
	mustListen(t, p)
	if _, err := p.Connect(addr); err != nil {
		t.Fatal(err)
	}
	// Same peer redials (a reconnect after a perceived failure).
	if _, err := p.Connect(addr); err != nil {
		t.Fatalf("reconnect refused by the cap: %v", err)
	}
	if got := len(target.Partners()); got != 1 {
		t.Fatalf("partner set %d, want 1", got)
	}
}

// TestHandshakeSemaphoreShedsAndClosesCleanly opens more silent
// connections than the pending-handshake bound allows, checks the
// excess is shed without protocol work, and that closing the node
// mid-storm neither hangs nor leaks the handshake goroutines.
func TestHandshakeSemaphoreShedsAndClosesCleanly(t *testing.T) {
	cfg := testConfig(1, 0)
	cfg.MaxPendingHandshakes = 2
	cfg.HandshakeTimeout = 300 * time.Millisecond
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := n.Listen()
	if err != nil {
		t.Fatal(err)
	}

	// 8 dials that never send a handshake: 2 occupy the slots, the rest
	// must be shed at accept time.
	var conns []net.Conn
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	for i := 0; i < 8; i++ {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}
	waitFor(t, 2*time.Second, func() bool {
		return n.Admission().HandshakesShed >= 6
	}, "excess handshakes never shed")

	// Abort mid-storm: the two parked handshake goroutines sit in a
	// deadline-bounded read; shutdown must complete once it expires.
	done := make(chan struct{})
	go func() {
		n.Abort()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("close hung on pending handshakes")
	}
}

// TestUploadSlotsRefusal caps a source at one pusher and subscribes two
// lanes: the second must be refused with an Unsubscribe notice that
// orphans the child's lane immediately.
func TestUploadSlotsRefusal(t *testing.T) {
	srcCfg := testConfig(0, 0)
	srcCfg.UploadSlots = 1
	src := mustNode(t, srcCfg)
	addr := mustListen(t, src)
	if err := src.StartSource(); err != nil {
		t.Fatal(err)
	}

	child := mustNode(t, testConfig(1, 0))
	mustListen(t, child)
	if _, err := child.Connect(addr); err != nil {
		t.Fatal(err)
	}
	if err := child.InitBuffers(0); err != nil {
		t.Fatal(err)
	}
	child.SubscribeTracked(0, 0, 0)
	waitFor(t, 2*time.Second, func() bool { return child.Latest(0) >= 0 },
		"admitted lane never delivered")
	child.SubscribeTracked(0, 1, 0)
	waitFor(t, 2*time.Second, func() bool {
		return src.Admission().SubscribesRejected == 1 && child.LaneParent(1) == -1
	}, "over-budget lane neither refused nor orphaned")
	// The admitted lane keeps flowing.
	if child.LaneParent(0) != 0 {
		t.Fatalf("admitted lane orphaned too: parent %d", child.LaneParent(0))
	}
}

// TestRejectAlternatesExcludesUnusable checks the alternate builder
// filters the requester, the node itself, and address-less entries.
func TestRejectAlternatesExcludesUnusable(t *testing.T) {
	cfg := testConfig(1, 0)
	cfg.RejectAlternates = 8
	n := mustNode(t, cfg)
	n.mu.Lock()
	n.selfAddr = "self:1"
	n.mcache[2] = mcacheEntry{addr: "b:1", seen: time.Now()}
	n.mcache[3] = mcacheEntry{addr: "", seen: time.Now()}       // no address
	n.mcache[4] = mcacheEntry{addr: "self:1", seen: time.Now()} // ourselves via tracker echo
	n.mcache[5] = mcacheEntry{addr: "e:1", seen: time.Now()}
	n.mu.Unlock()
	got := n.rejectAlternates(5) // 5 is the requester
	if len(got) != 1 || got[0] != (protocol.PeerEntry{ID: 2, Addr: "b:1"}) {
		t.Fatalf("alternates %v, want only peer 2", got)
	}
}
