package netpeer

import (
	"sync/atomic"

	"coolstream/internal/protocol"
)

// netStats are the data-plane hot counters, updated with atomics so
// neither the writer goroutines nor the pushers take n.mu to account
// their traffic.
type netStats struct {
	framesSent     atomic.Uint64
	writeCalls     atomic.Uint64
	bytesSent      atomic.Uint64
	bmFrames       atomic.Uint64
	bmBytes        atomic.Uint64
	blockFrames    atomic.Uint64
	blockBytes     atomic.Uint64
	fanEncodes     atomic.Uint64
	fanShared      atomic.Uint64
	blocksReceived atomic.Uint64
}

// countFrame accounts one frame handed to the data plane (enqueued on a
// writer or written directly), classified by message type.
func (s *netStats) countFrame(t protocol.MsgType, size int) {
	s.framesSent.Add(1)
	switch t {
	case protocol.TypeBMExchange, protocol.TypeBMDelta, protocol.TypeBMAck:
		s.bmFrames.Add(1)
		s.bmBytes.Add(uint64(size))
	case protocol.TypeBlockPush:
		s.blockFrames.Add(1)
		s.blockBytes.Add(uint64(size))
	}
}

// NetStats is a snapshot of a node's data-plane counters. The
// saturation harness sums these across nodes to report bytes and write
// syscalls per delivered block, and BM signalling bytes per peer.
type NetStats struct {
	// FramesSent counts frames handed to the plane (a torn-down queue
	// may drop some before they reach the wire).
	FramesSent uint64
	// WriteCalls counts Write syscalls issued; the batched writer's
	// whole purpose is FramesSent >> WriteCalls under load.
	WriteCalls uint64
	// BytesSent counts bytes actually written.
	BytesSent uint64
	// BMFrames/BMBytes cover buffer-map signalling: BMExchange,
	// BMDelta and BMAck frames.
	BMFrames uint64
	BMBytes  uint64
	// BlockFrames/BlockBytes cover BlockPush frames.
	BlockFrames uint64
	BlockBytes  uint64
	// FanEncodes/FanShared: block frames encoded once vs enqueued from
	// the shared fan-out cache.
	FanEncodes uint64
	FanShared  uint64
	// BlocksReceived counts pushes landed in the sync buffer.
	BlocksReceived uint64
}

// Stats returns a snapshot of the node's data-plane counters.
func (n *Node) Stats() NetStats {
	return NetStats{
		FramesSent:     n.stats.framesSent.Load(),
		WriteCalls:     n.stats.writeCalls.Load(),
		BytesSent:      n.stats.bytesSent.Load(),
		BMFrames:       n.stats.bmFrames.Load(),
		BMBytes:        n.stats.bmBytes.Load(),
		BlockFrames:    n.stats.blockFrames.Load(),
		BlockBytes:     n.stats.blockBytes.Load(),
		FanEncodes:     n.stats.fanEncodes.Load(),
		FanShared:      n.stats.fanShared.Load(),
		BlocksReceived: n.stats.blocksReceived.Load(),
	}
}
