// Admission control (flash-crowd survival, §VI): the peer-side rungs
// of the overload-degradation ladder. A node protects what it already
// serves before it takes on more:
//
//   - the accept loop sheds handshakes past MaxPendingHandshakes
//     before spending a goroutine on them;
//   - a full partner set answers PartnerRequest with reject-with-
//     alternates — a redirect into the mCache, not a dead end;
//   - the pusher pool refuses subscriptions past UploadSlots with an
//     Unsubscribe notice so the child re-plans immediately.
//
// The tracker's rung (adaptive shedding with retry-after hints) lives
// in internal/netboot; the join engine (join.go) consumes both.
package netpeer

import (
	"fmt"
	"sync/atomic"

	"coolstream/internal/protocol"
)

// RejectedError is Connect's outcome when the remote peer answered the
// handshake with an admission reject. Alternates carries the candidate
// peers the rejecting node suggested instead (possibly empty); they are
// already merged into this node's mCache.
type RejectedError struct {
	Peer       int32
	Alternates []protocol.PeerEntry
}

func (e *RejectedError) Error() string {
	return fmt.Sprintf("netpeer: partner %d full (%d alternates)", e.Peer, len(e.Alternates))
}

// admissionStats are the admission-control counters, atomics for the
// same reason as netStats: the accept loop and pushers must not take
// n.mu to account a shed.
type admissionStats struct {
	handshakesShed     atomic.Uint64
	partnersRejected   atomic.Uint64
	partnersAdmitted   atomic.Uint64
	rejectsReceived    atomic.Uint64
	subscribesRejected atomic.Uint64
}

// AdmissionStats is a snapshot of a node's admission counters.
type AdmissionStats struct {
	// HandshakesShed counts inbound connections dropped by the
	// pending-handshake bound before any protocol work.
	HandshakesShed uint64
	// PartnersRejected counts inbound handshakes refused by the
	// MaxPartners cap (each carried alternates when the mCache had any).
	PartnersRejected uint64
	// PartnersAdmitted counts inbound handshakes that registered.
	PartnersAdmitted uint64
	// RejectsReceived counts this node's own Connects refused by a full
	// remote peer.
	RejectsReceived uint64
	// SubscribesRejected counts subscriptions refused by the
	// UploadSlots cap.
	SubscribesRejected uint64
}

// Admission returns a snapshot of the node's admission counters.
func (n *Node) Admission() AdmissionStats {
	return AdmissionStats{
		HandshakesShed:     n.adm.handshakesShed.Load(),
		PartnersRejected:   n.adm.partnersRejected.Load(),
		PartnersAdmitted:   n.adm.partnersAdmitted.Load(),
		RejectsReceived:    n.adm.rejectsReceived.Load(),
		SubscribesRejected: n.adm.subscribesRejected.Load(),
	}
}

// reservePartnerSlot decides inbound partner admission BEFORE the
// accept frame is sent: it counts live conns plus in-flight reserved
// handshakes against MaxPartners, so two concurrent handshakes cannot
// both squeeze through the last slot. An existing partnership with the
// same peer is exempt — its conn would be replaced, not added. The
// reservation is released by registerReserved (success or not) or
// releasePartnerSlot (send failure).
func (n *Node) reservePartnerSlot(peer int32) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return false
	}
	if n.cfg.MaxPartners > 0 {
		if _, dup := n.conns[peer]; !dup && len(n.conns)+n.hsReserved >= n.cfg.MaxPartners {
			return false
		}
	}
	n.hsReserved++
	return true
}

// releasePartnerSlot returns a reservation that never reached
// registerReserved.
func (n *Node) releasePartnerSlot() {
	n.mu.Lock()
	n.hsReserved--
	n.mu.Unlock()
}

// rejectAlternates builds the candidate list attached to an admission
// reject: up to RejectAlternates mCache entries, excluding the
// requester and ourselves, in sorted-ID order (deterministic for the
// wire tests; the joiner shuffles its own dial order anyway).
func (n *Node) rejectAlternates(requester int32) []protocol.PeerEntry {
	want := n.cfg.RejectAlternates
	if want <= 0 {
		return nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	ids := make([]int32, 0, len(n.mcache))
	for id := range n.mcache {
		if id == requester || id == n.cfg.ID {
			continue
		}
		if e := n.mcache[id]; e.addr == "" || e.addr == n.selfAddr {
			continue
		}
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	if len(ids) > want {
		ids = ids[:want]
	}
	entries := make([]protocol.PeerEntry, 0, len(ids))
	for _, id := range ids {
		entries = append(entries, protocol.PeerEntry{ID: id, Addr: n.mcache[id].addr})
	}
	return entries
}

// PlaybackStats returns the raw on-time/due block counters behind
// Continuity. The surge harness snapshots them before a join storm and
// again after, so established-peer continuity can be measured over the
// storm window alone instead of diluted across the whole run.
func (n *Node) PlaybackStats() (onTime, total int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.onTime, n.total
}
