package netpeer

import (
	"time"

	"coolstream/internal/protocol"
	"coolstream/internal/xrand"
)

// AdaptConfig parameterises the networked adaptation loop — the §IV-B
// logic running over real sockets.
type AdaptConfig struct {
	// Ts is the own-deviation threshold (Inequality (1)), in blocks.
	Ts int64
	// Tp is the partner-lag threshold (Inequality (2)), in blocks.
	Tp int64
	// Ta is the adaptation cool-down.
	Ta time.Duration
	// Check is how often the monitor evaluates the inequalities.
	Check time.Duration
	// BMStale expires partner buffer maps: an entry older than this is
	// ignored by the planner — a hung partner's frozen map can neither
	// set the best-progress reference nor qualify its owner as a
	// replacement parent (0 selects 4×BMPeriod, floor 1s).
	BMStale time.Duration
	// Seed drives the random choice among eligible parents.
	Seed uint64
}

// EnableAdaptation starts the peer-adaptation monitor: every Check
// interval it evaluates Inequalities (1) and (2) against the latest
// partner buffer maps and, at most once per Ta, unsubscribes the worst
// lagging sub-stream from its parent and re-subscribes it to a random
// eligible partner. Call after the initial subscriptions are placed
// with SubscribeTracked.
func (n *Node) EnableAdaptation(cfg AdaptConfig) {
	if cfg.Check <= 0 {
		cfg.Check = 500 * time.Millisecond
	}
	if cfg.BMStale <= 0 {
		cfg.BMStale = 4 * n.cfg.BMPeriod
		if cfg.BMStale < time.Second {
			cfg.BMStale = time.Second
		}
	}
	rng := xrand.New(cfg.Seed ^ uint64(n.cfg.ID)<<32)
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		ticker := time.NewTicker(cfg.Check)
		defer ticker.Stop()
		var lastSwitch time.Time
		for {
			// Select the close signal alongside the ticker: Close must
			// not block for up to a full Check interval waiting for the
			// next tick to observe n.closed.
			select {
			case <-ticker.C:
			case <-n.done:
				return
			}
			n.mu.Lock()
			if n.closed {
				n.mu.Unlock()
				return
			}
			if !n.started || time.Since(lastSwitch) < cfg.Ta {
				n.mu.Unlock()
				continue
			}
			plan, ok := n.planSwitchLocked(cfg, rng)
			n.mu.Unlock()
			if !ok {
				continue
			}
			// Perform the switch outside the lock: network sends block.
			if plan.oldParent >= 0 {
				if cn := n.connOf(plan.oldParent); cn != nil {
					cn.send(protocol.Message{
						Type: protocol.TypeUnsubscribe, From: n.cfg.ID, To: plan.oldParent,
						SubStream: int16(plan.lane),
					})
				}
			}
			if err := n.SubscribeTracked(plan.newParent, plan.lane, plan.from); err == nil {
				lastSwitch = time.Now()
			}
		}
	}()
}

// switchPlan is one adaptation decision.
type switchPlan struct {
	lane      int
	oldParent int32
	newParent int32
	from      int64
}

// planSwitchLocked evaluates the inequalities under n.mu and picks the
// worst violated lane plus an eligible replacement parent. Partner
// buffer maps older than cfg.BMStale are expired: a hung partner must
// neither set the best-progress reference nor qualify as a replacement.
func (n *Node) planSwitchLocked(cfg AdaptConfig, rng *xrand.RNG) (switchPlan, bool) {
	k := n.cfg.Layout.K
	now := time.Now()
	fresh := func(pid int32) bool {
		if cfg.BMStale <= 0 {
			return true
		}
		at, ok := n.lastBMAt[pid]
		return ok && now.Sub(at) <= cfg.BMStale
	}
	// Own per-lane progress and the maximum.
	own := make([]int64, k)
	var maxOwn int64
	for j := 0; j < k; j++ {
		own[j] = n.sb.Latest(j)
		if own[j] > maxOwn {
			maxOwn = own[j]
		}
	}
	// Best advertised progress across partners with live buffer maps.
	var best int64
	for pid, bm := range n.lastBM {
		if !fresh(pid) {
			continue
		}
		if m := bm.MaxLatest(); m > best {
			best = m
		}
	}
	if best == 0 {
		return switchPlan{}, false
	}
	worst, worstLag := -1, int64(-1)
	for j := 0; j < k; j++ {
		lag1 := maxOwn - own[j]
		violated := lag1 >= cfg.Ts
		parent := n.laneParent[j]
		if parent >= 0 {
			if bm, ok := n.lastBM[parent]; ok && bm.K() == k && fresh(parent) {
				if best-bm.Latest[j] >= cfg.Tp {
					violated = true // Inequality (2)
				}
			} else if !ok || !fresh(parent) {
				// The parent's map expired (or never arrived): the lane
				// is fed by a partner we cannot reason about — treat as
				// violated rather than let a frozen map protect it.
				violated = true
			}
		} else {
			violated = true // stalled lane: always re-subscribe
		}
		if violated && lag1 > worstLag {
			worst, worstLag = j, lag1
		}
	}
	if worst < 0 {
		return switchPlan{}, false
	}
	// Eligible replacements: partners ahead of us on the lane, within
	// Tp of the best advertiser, with a live buffer map.
	var cands []int32
	for pid, bm := range n.lastBM {
		if bm.K() != k || pid == n.laneParent[worst] || !fresh(pid) {
			continue
		}
		if bm.Latest[worst] <= own[worst] {
			continue
		}
		if best-bm.Latest[worst] >= cfg.Tp {
			continue
		}
		if _, connected := n.conns[pid]; !connected {
			continue
		}
		cands = append(cands, pid)
	}
	if len(cands) == 0 {
		return switchPlan{}, false
	}
	// Deterministic order for the random draw.
	for i := 1; i < len(cands); i++ {
		for m := i; m > 0 && cands[m] < cands[m-1]; m-- {
			cands[m], cands[m-1] = cands[m-1], cands[m]
		}
	}
	choice := cands[rng.Intn(len(cands))]
	return switchPlan{
		lane:      worst,
		oldParent: n.laneParent[worst],
		newParent: choice,
		from:      own[worst] + 1,
	}, true
}

// SubscribeTracked subscribes like Subscribe and records the lane's
// parent so the adaptation monitor can reason about it.
func (n *Node) SubscribeTracked(peerID int32, j int, startSeq int64) error {
	if err := n.Subscribe(peerID, j, startSeq); err != nil {
		return err
	}
	n.mu.Lock()
	n.laneParent[j] = peerID
	n.mu.Unlock()
	return nil
}

// LaneParent returns the tracked parent of sub-stream j (-1 if none).
func (n *Node) LaneParent(j int) int32 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.laneParent[j]
}

func (n *Node) connOf(peer int32) *conn {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.conns[peer]
}
