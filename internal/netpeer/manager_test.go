package netpeer

import (
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"coolstream/internal/buffer"
	"coolstream/internal/faults"
	"coolstream/internal/netboot"
	"coolstream/internal/protocol"
	"coolstream/internal/sim"
	"coolstream/internal/xrand"
)

// newTestBM builds a K-lane buffer map advertising `latest` on every
// lane.
func newTestBM(latest int64) buffer.BufferMap {
	bm := buffer.NewBufferMap(testLayout.K)
	for j := range bm.Latest {
		bm.Latest[j] = latest
	}
	return bm
}

// testMgrConfig is a fast maintenance loop for wall-clock tests.
func testMgrConfig(target int) ManagerConfig {
	return ManagerConfig{
		TargetPartners: target,
		Stale:          800 * time.Millisecond,
		Interval:       100 * time.Millisecond,
		DialCooldown:   500 * time.Millisecond,
		Seed:           1,
	}
}

// downableBootstrap wraps a netboot server so tests can take the
// tracker down (503, which the client treats as retryable).
type downableBootstrap struct {
	srv  *netboot.Server
	down atomic.Bool
}

func (d *downableBootstrap) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if d.down.Load() {
		http.Error(w, "injected outage", http.StatusServiceUnavailable)
		return
	}
	d.srv.ServeHTTP(w, r)
}

func newTestBootstrap(t *testing.T) (*downableBootstrap, *httptest.Server) {
	t.Helper()
	d := &downableBootstrap{srv: netboot.NewServer(7)}
	hs := httptest.NewServer(d)
	t.Cleanup(hs.Close)
	return d, hs
}

func testBootClient(base string, id int32) *netboot.Client {
	c := netboot.NewClient(base, &http.Client{Timeout: 2 * time.Second})
	c.SetBackoff(faults.Backoff{Base: 20 * sim.Millisecond, Cap: 100 * sim.Millisecond, JitterFrac: 0.5}, 3, uint64(id))
	return c
}

// TestManagerReplenishesAfterPartnerKill is the partner-kill recovery
// path: a peer whose partner dies abruptly (no Leave — a crash) must
// re-contact the tracker and replenish back to the target M.
func TestManagerReplenishesAfterPartnerKill(t *testing.T) {
	_, hs := newTestBootstrap(t)

	src := mustNode(t, testConfig(0, 0))
	srcAddr := mustListen(t, src)
	testBootClient(hs.URL, 0).Register(0, srcAddr)

	victim := mustNode(t, testConfig(2, 0))
	victimAddr := mustListen(t, victim)
	testBootClient(hs.URL, 2).Register(2, victimAddr)

	a := mustNode(t, testConfig(1, 0))
	mustListen(t, a)
	if err := a.EnableMaintenance(testMgrConfig(2), testBootClient(hs.URL, 1)); err != nil {
		t.Fatal(err)
	}
	// Replenishment discovers both tracker-registered peers from zero.
	waitFor(t, 5*time.Second, func() bool { return len(a.Partners()) >= 2 },
		"maintenance never built the partner set from the tracker")

	// Crash the victim: conns die without a Leave frame.
	victim.Abort()

	// A third peer joins; A must adopt it to restore the target.
	repl := mustNode(t, testConfig(3, 0))
	replAddr := mustListen(t, repl)
	testBootClient(hs.URL, 3).Register(3, replAddr)

	waitFor(t, 6*time.Second, func() bool {
		ps := a.Partners()
		if len(ps) < 2 {
			return false
		}
		for _, p := range ps {
			if p == 2 {
				return false // the dead partner must be gone
			}
		}
		return true
	}, "partner set never replenished after the kill")
	if rec := a.Recovery(); rec.PartnersReplaced < 2 || rec.Rebootstraps == 0 {
		t.Fatalf("recovery counters %+v", rec)
	}
}

// TestManagerTearsDownHungPartner is the stale-conn case TCP errors
// never surface: a partner that handshakes and then goes silent (conn
// open, nothing sent) must be torn down by the liveness deadline, while
// a quiet-but-alive partner (no buffers, ping heartbeats only)
// survives.
func TestManagerTearsDownHungPartner(t *testing.T) {
	a := mustNode(t, testConfig(1, 0))
	addr := mustListen(t, a)
	if err := a.EnableMaintenance(testMgrConfig(2), nil); err != nil {
		t.Fatal(err)
	}

	// Alive partner: a real node with no buffers — its bmLoop sends
	// TypePing heartbeats.
	alive := mustNode(t, testConfig(2, 0))
	mustListen(t, alive)
	if _, err := alive.Connect(addr); err != nil {
		t.Fatal(err)
	}

	// Hung partner: raw socket that completes the handshake, then
	// freezes with the connection open.
	zc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer zc.Close()
	if err := protocol.WriteFrame(zc, protocol.Message{Type: protocol.TypePartnerRequest, From: 99, To: -1}); err != nil {
		t.Fatal(err)
	}
	zc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if resp, err := protocol.NewFrameReader(zc).Read(); err != nil || resp.Type != protocol.TypePartnerAccept {
		t.Fatalf("zombie handshake: %v %v", resp.Type, err)
	}
	waitFor(t, 2*time.Second, func() bool { return len(a.Partners()) == 2 }, "both partners never registered")

	// The zombie must be reaped; the pinging partner must survive.
	waitFor(t, 4*time.Second, func() bool {
		ps := a.Partners()
		return len(ps) == 1 && ps[0] == 2
	}, "hung partner never torn down (or live partner reaped)")
	if rec := a.Recovery(); rec.StaleTeardowns != 1 {
		t.Fatalf("StaleTeardowns %d, want 1", rec.StaleTeardowns)
	}
}

// TestManagerRebootstrapsThroughOutage: with the tracker down, the
// maintenance loop keeps retrying through the client's backoff; once
// the tracker returns, the node re-registers itself and replenishes.
func TestManagerRebootstrapsThroughOutage(t *testing.T) {
	d, hs := newTestBootstrap(t)
	d.down.Store(true) // tracker down from the start

	a := mustNode(t, testConfig(1, 0))
	mustListen(t, a)
	bc := testBootClient(hs.URL, 1)
	if err := a.EnableMaintenance(testMgrConfig(1), bc); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		return a.Recovery().BootstrapFailures >= 2
	}, "no bootstrap failures recorded during the outage")
	if retried, _ := bc.RetryStats(); retried == 0 {
		t.Fatal("client never retried through the outage")
	}

	// Tracker comes back with a candidate registered.
	peer := mustNode(t, testConfig(5, 0))
	peerAddr := mustListen(t, peer)
	d.down.Store(false)
	if err := testBootClient(hs.URL, 5).Register(5, peerAddr); err != nil {
		t.Fatal(err)
	}

	waitFor(t, 5*time.Second, func() bool {
		ps := a.Partners()
		return len(ps) == 1 && ps[0] == 5
	}, "never re-partnered after the outage lifted")
	// Re-registration healed the tracker's view of A.
	if d.srv.Count() != 2 {
		t.Fatalf("tracker count %d after recovery, want 2", d.srv.Count())
	}
}

// TestCloseDuringReplenishNoLeak is the shutdown regression: Close
// while the maintenance loop is mid-replenishment (slow failing dials,
// and a tracker client stuck in a 10-second retry backoff against a
// dead address) must not leak the maintenance goroutine or stall.
// EnableMaintenance wires the node's done channel into the boot
// client's stop hook, so the backoff pause aborts immediately.
func TestCloseDuringReplenishNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	cfg := testConfig(1, 0)
	cfg.Dialer = func(network, addr string, timeout time.Duration) (net.Conn, error) {
		time.Sleep(50 * time.Millisecond)
		return nil, fmt.Errorf("unreachable (test dialer)")
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustListen(t, n)
	// Tracker at a dead address with a backoff far longer than the
	// Close deadline below: without stop wiring, rebootstrap would pin
	// the maintenance goroutine in its retry sleep.
	bc := netboot.NewClient("http://127.0.0.1:1", &http.Client{Timeout: 200 * time.Millisecond})
	bc.SetBackoff(faults.Backoff{Base: 10 * sim.Second, Cap: 20 * sim.Second}, 5, 1)
	mcfg := testMgrConfig(3)
	mcfg.Interval = 30 * time.Millisecond
	mcfg.DialCooldown = time.Millisecond // keep candidates hot so dials keep happening
	if err := n.EnableMaintenance(mcfg, bc); err != nil {
		t.Fatal(err)
	}
	for i := int32(10); i < 16; i++ {
		n.mcacheAdd(i, fmt.Sprintf("127.0.0.1:%d", 40000+i))
	}
	time.Sleep(400 * time.Millisecond) // replenishment churns, rebootstrap enters its backoff
	done := make(chan struct{})
	go func() {
		n.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on the maintenance loop")
	}
	waitFor(t, 3*time.Second, func() bool {
		return runtime.NumGoroutine() <= base+2
	}, "maintenance goroutine leaked past Close")
}

// TestManagerRenewsLease pins the keep-alive half of lease expiry: a
// healthy peer with a full partner set (so it never rebootstraps) must
// keep renewing its tracker lease, while a peer with no renewal loop
// lapses and disappears from candidates.
func TestManagerRenewsLease(t *testing.T) {
	reg := netboot.NewRegistry(netboot.RegistryConfig{LeaseTTL: 500 * time.Millisecond, Seed: 5})
	hs := httptest.NewServer(netboot.NewServerWith(reg))
	defer hs.Close()

	b := mustNode(t, testConfig(2, 0))
	addrB := mustListen(t, b)

	a := mustNode(t, testConfig(1, 0))
	addrA := mustListen(t, a)
	bc := testBootClient(hs.URL, 1)
	if err := bc.Register(1, addrA); err != nil {
		t.Fatal(err)
	}
	// Peer 77 registers once and never renews — a crashed peer.
	if _, err := reg.Register(77, "127.0.0.1:47777", ""); err != nil {
		t.Fatal(err)
	}

	mcfg := testMgrConfig(1)
	mcfg.RenewEvery = 100 * time.Millisecond
	if err := a.EnableMaintenance(mcfg, bc); err != nil {
		t.Fatal(err)
	}
	// Full partner set: replenishment (and with it rebootstrap's
	// incidental re-register) never runs; only renewLease keeps the
	// lease alive.
	if _, err := a.Connect(addrB); err != nil {
		t.Fatal(err)
	}

	time.Sleep(1200 * time.Millisecond) // > 2 lease TTLs

	cands := reg.Candidates(10, netboot.ExcludeNone)
	ids := make(map[int32]bool, len(cands))
	for _, e := range cands {
		ids[e.ID] = true
	}
	if !ids[1] {
		t.Fatalf("renewing peer evicted: candidates %+v", cands)
	}
	if ids[77] {
		t.Fatalf("silent peer still a candidate after %v TTL: %+v", 500*time.Millisecond, cands)
	}
	if rec := a.Recovery(); rec.LeaseRenewals < 5 {
		t.Fatalf("LeaseRenewals %d, want ≥5 over 1.2s at 100ms", rec.LeaseRenewals)
	}
}

// TestEnableMaintenanceGuards pins the config validation and the
// double-enable rejection.
func TestEnableMaintenanceGuards(t *testing.T) {
	n := mustNode(t, testConfig(1, 0))
	if err := n.EnableMaintenance(ManagerConfig{}, nil); err == nil {
		t.Fatal("zero TargetPartners accepted")
	}
	if err := n.EnableMaintenance(testMgrConfig(2), nil); err != nil {
		t.Fatal(err)
	}
	if err := n.EnableMaintenance(testMgrConfig(2), nil); err == nil {
		t.Fatal("double enable accepted")
	}
}

// TestPusherAbortNotifiesChild is the silent-pusher-death fix: when a
// parent's pusher dies abnormally while the connection is still alive,
// the child must receive a teardown notice and orphan the lane
// immediately, instead of discovering the stall via adaptation.
func TestPusherAbortNotifiesChild(t *testing.T) {
	src := mustNode(t, testConfig(0, 8*testLayout.RateBps)) // metered uplink: bucket is active
	addr := mustListen(t, src)
	if err := src.StartSource(); err != nil {
		t.Fatal(err)
	}
	child := mustNode(t, testConfig(1, 0))
	mustListen(t, child)
	if _, err := child.Connect(addr); err != nil {
		t.Fatal(err)
	}
	if err := child.InitBuffers(0); err != nil {
		t.Fatal(err)
	}
	if err := child.SubscribeTracked(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, func() bool { return child.Latest(0) > 5 }, "no blocks flowed")

	// Kill the parent's upload bucket out from under its pushers; the
	// node itself stays up and the conn stays open.
	src.bkt.close()

	waitFor(t, 3*time.Second, func() bool { return child.LaneParent(0) == -1 },
		"child never orphaned the lane after pusher death")
	if got := len(child.Partners()); got != 1 {
		t.Fatalf("partnership should survive pusher death, have %d partners", got)
	}
	if rec := src.Recovery(); rec.PusherAborts == 0 {
		t.Fatal("pusher abort not counted")
	}
}

// TestPlanSwitchIgnoresStaleBM is the frozen-buffer-map fix: a hung
// partner's stale map must neither set the best-progress reference nor
// qualify its owner as a replacement parent.
func TestPlanSwitchIgnoresStaleBM(t *testing.T) {
	n := mustNode(t, testConfig(3, 0))
	if err := n.InitBuffers(0); err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(1)
	now := time.Now()

	n.mu.Lock()
	freshBM := newTestBM(50)
	staleBM := newTestBM(500) // way ahead — would dominate best if counted
	n.conns[1] = &conn{peer: 1}
	n.conns[2] = &conn{peer: 2}
	n.lastBM[1] = freshBM
	n.lastBMAt[1] = now
	n.lastBM[2] = staleBM
	n.lastBMAt[2] = now.Add(-10 * time.Second)
	cfg := AdaptConfig{Ts: 10, Tp: 1000, BMStale: time.Second}
	plan, ok := n.planSwitchLocked(cfg, rng)
	if !ok {
		n.mu.Unlock()
		t.Fatal("no plan despite orphaned lanes and a fresh candidate")
	}
	if plan.newParent != 1 {
		n.mu.Unlock()
		t.Fatalf("stale partner chosen as parent: %+v", plan)
	}

	// With only the stale partner left, planning must fail entirely:
	// best-progress cannot come from an expired map.
	delete(n.lastBM, 1)
	delete(n.lastBMAt, 1)
	if _, ok := n.planSwitchLocked(cfg, rng); ok {
		n.mu.Unlock()
		t.Fatal("planned a switch from a stale buffer map alone")
	}
	// Detach the fake conns before Close walks them.
	n.conns = make(map[int32]*conn)
	n.mu.Unlock()
}

// fakeBoot records tracker calls for the graceful-departure test.
type fakeBoot struct {
	mu    sync.Mutex
	left  []int32
	regs  []int32
	cands []netboot.Entry
}

func (f *fakeBoot) Register(id int32, addr string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.regs = append(f.regs, id)
	return nil
}

func (f *fakeBoot) Leave(id int32) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.left = append(f.left, id)
	return nil
}

func (f *fakeBoot) Candidates(n int, exclude int32) ([]netboot.Entry, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]netboot.Entry(nil), f.cands...), nil
}

// TestCloseAnnouncesDeparture pins the graceful-departure path: Close
// sends Leave to live partners (the peer drops the partnership without
// waiting for a read error) and deregisters from the tracker.
func TestCloseAnnouncesDeparture(t *testing.T) {
	fb := &fakeBoot{}
	a := mustNode(t, testConfig(1, 0))
	mustListen(t, a)
	if err := a.EnableMaintenance(testMgrConfig(1), fb); err != nil {
		t.Fatal(err)
	}
	b := mustNode(t, testConfig(2, 0))
	addrB := mustListen(t, b)
	if _, err := a.Connect(addrB); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return len(b.Partners()) == 1 }, "partnership never formed")

	a.Close()
	waitFor(t, 2*time.Second, func() bool { return len(b.Partners()) == 0 },
		"peer kept the partnership after Leave")
	fb.mu.Lock()
	defer fb.mu.Unlock()
	if len(fb.left) != 1 || fb.left[0] != 1 {
		t.Fatalf("tracker Leave calls %v, want [1]", fb.left)
	}
}

// TestGossipFillsMCache: a partner answers TypeMCacheRequest with its
// own candidates, and the requester merges them.
func TestGossipFillsMCache(t *testing.T) {
	a := mustNode(t, testConfig(1, 0))
	mustListen(t, a)
	b := mustNode(t, testConfig(2, 0))
	addrB := mustListen(t, b)
	// B knows about peer 9.
	b.mcacheAdd(9, "127.0.0.1:49009")
	// Force B to have a selfAddr so it advertises itself as well.
	b.mu.Lock()
	b.selfAddr = addrB
	b.mu.Unlock()

	if _, err := a.Connect(addrB); err != nil {
		t.Fatal(err)
	}
	cn := a.connOf(2)
	if cn == nil {
		t.Fatal("no conn")
	}
	if err := cn.send(protocol.Message{Type: protocol.TypeMCacheRequest, From: 1, To: 2, Want: 8}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool {
		a.mu.Lock()
		_, ok := a.mcache[9]
		a.mu.Unlock()
		return ok && a.Recovery().GossipMerged > 0
	}, "gossiped candidate never merged")
}
