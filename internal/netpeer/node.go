package netpeer

import (
	"fmt"
	"net"
	"sync"
	"time"

	"coolstream/internal/buffer"
	"coolstream/internal/protocol"
)

// Config configures one networked node.
type Config struct {
	// ID is the node's protocol identity.
	ID int32
	// Layout fixes R, K and the block size (small blocks keep tests
	// fast; the wire format is size-agnostic).
	Layout buffer.Layout
	// UploadBps meters outgoing block pushes (0 = unlimited).
	UploadBps float64
	// BMPeriod is the buffer-map exchange period towards partners.
	BMPeriod time.Duration
	// BufferBlocks is the cache window in per-sub-stream blocks.
	BufferBlocks int64
	// ReadyBlocks is the startup buffer in per-sub-stream blocks.
	ReadyBlocks int64
	// WriteTimeout bounds every frame write towards a partner (0
	// selects DefaultWriteTimeout; negative is a configuration error).
	WriteTimeout time.Duration
	// Dialer overrides the outbound connection function (nil =
	// net.DialTimeout). Fault-injection wrappers hook in here (see
	// internal/faults.Injector.WrapDial).
	Dialer func(network, addr string, timeout time.Duration) (net.Conn, error)
	// LegacyPlane disables the batched data plane: every send takes the
	// direct one-write-per-frame path and BM exchanges always carry full
	// maps. This is the "before" configuration the saturation harness
	// measures the batched plane against.
	LegacyPlane bool
	// FlushBytes caps one coalesced write (default 64 KiB).
	FlushBytes int
	// FlushDelay is how long the writer lingers for more frames when the
	// queue holds less than FlushBytes (default 2ms; negative disables
	// lingering, making every flush immediate).
	FlushDelay time.Duration
	// QueueBytes bounds each partner's outbound queue; overflow tears
	// the partnership down as a slow partner (default 256 KiB).
	QueueBytes int
	// BMKeyframeEvery is the period, in BM exchanges, of absolute
	// keyframes between differential updates (default 16).
	BMKeyframeEvery int
	// MaxFrameBytes bounds inbound frames on partner connections
	// (default BlockBytes+4096, floor 16 KiB). Partner conns only carry
	// blocks of a known size and small control frames; accepting the
	// protocol-wide 16 MiB limit would let one bad peer force huge
	// allocations.
	MaxFrameBytes int

	// MaxPartners caps the partner set as seen by INBOUND handshakes
	// (0 = unlimited). A full node answers PartnerRequest with a
	// PartnerReject carrying alternate candidates from its mCache, so a
	// flash-crowd joiner is redirected, not dead-ended. Outbound
	// Connects are not capped: the node itself decides when to dial.
	MaxPartners int
	// MaxPendingHandshakes bounds concurrent inbound handshakes — the
	// pre-registration window where a goroutine and a read deadline are
	// the only state. Connections past the bound are dropped before any
	// protocol work (default 64; negative = unlimited). This is the
	// accept-side storm fuse: a SYN flood of joiners costs one closed
	// socket each, not a goroutine pile-up.
	MaxPendingHandshakes int
	// RejectAlternates is how many mCache candidates ride along on an
	// admission reject (default 4; negative = none).
	RejectAlternates int
	// UploadSlots caps concurrently served sub-stream subscriptions
	// (0 = unlimited). A subscribe past the cap — or before this node's
	// own buffers are initialised — is refused with an Unsubscribe
	// notice, so the child re-plans immediately instead of starving on
	// a silent lane. This protects established children: the upload
	// bucket is shared, and admitting a 9th lane onto bandwidth sized
	// for 8 degrades all 9.
	UploadSlots int
	// DialTimeout bounds the outbound TCP dial in Connect (0 selects
	// DefaultDialTimeout; negative is a configuration error).
	DialTimeout time.Duration
	// HandshakeTimeout bounds the handshake read on both ends (0
	// selects DefaultHandshakeTimeout; negative is a configuration
	// error).
	HandshakeTimeout time.Duration
}

// DefaultWriteTimeout is the per-frame write deadline used when
// Config.WriteTimeout is zero.
const DefaultWriteTimeout = 10 * time.Second

// DefaultDialTimeout and DefaultHandshakeTimeout bound connection
// establishment when the corresponding Config field is zero.
const (
	DefaultDialTimeout      = 5 * time.Second
	DefaultHandshakeTimeout = 5 * time.Second
)

// defaultPendingHandshakes is the inbound handshake concurrency bound
// when Config.MaxPendingHandshakes is zero.
const defaultPendingHandshakes = 64

// defaultRejectAlternates is how many candidates a full node attaches
// to an admission reject when Config.RejectAlternates is zero.
const defaultRejectAlternates = 4

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Layout.Validate(); err != nil {
		return err
	}
	if c.BMPeriod <= 0 {
		return fmt.Errorf("netpeer: BMPeriod %v", c.BMPeriod)
	}
	if c.BufferBlocks <= 0 || c.ReadyBlocks <= 0 {
		return fmt.Errorf("netpeer: buffer %d / ready %d blocks", c.BufferBlocks, c.ReadyBlocks)
	}
	if c.WriteTimeout < 0 {
		return fmt.Errorf("netpeer: WriteTimeout %v", c.WriteTimeout)
	}
	if c.DialTimeout < 0 {
		return fmt.Errorf("netpeer: DialTimeout %v", c.DialTimeout)
	}
	if c.HandshakeTimeout < 0 {
		return fmt.Errorf("netpeer: HandshakeTimeout %v", c.HandshakeTimeout)
	}
	if c.MaxPartners < 0 {
		return fmt.Errorf("netpeer: MaxPartners %d", c.MaxPartners)
	}
	if c.UploadSlots < 0 {
		return fmt.Errorf("netpeer: UploadSlots %d", c.UploadSlots)
	}
	return nil
}

// conn is one partnership's TCP connection.
type conn struct {
	peer int32
	// outgoing records which end dialed: the duplicate-connection
	// tie-break in register relies on it being true on exactly one end.
	outgoing bool
	wt       time.Duration
	c        net.Conn
	wmu      sync.Mutex
	// n points back to the owning node for stats and config; nil on
	// bare conns (handshake rejects, tests) which always take the
	// direct send path.
	n *Node

	// Batched writer state (see writer.go). writerOn is set under n.mu
	// before the conn is published and never cleared.
	writerOn bool
	qmu      sync.Mutex
	qcond    *sync.Cond
	q        []outFrame
	qBytes   int
	qErr     error

	// BM delta sender state, guarded by n.mu: the last map sent on this
	// conn, the current epoch, whether the receiver acked it, and how
	// many deltas followed the last keyframe. bmFails is touched only
	// by the bmLoop goroutine.
	bmSent     buffer.BufferMap
	bmHave     bool
	bmEpoch    uint8
	bmAcked    bool
	bmSinceKey int
	bmFails    int

	// BM delta receiver state, guarded by n.mu: the sender's epoch as
	// last established by a keyframe.
	rxEpoch uint8
	rxHave  bool
}

// send hands one frame to the partner: enqueued on the batched writer
// when one is attached, written directly otherwise.
func (cn *conn) send(m protocol.Message) error {
	if cn.writerOn {
		return cn.enqueueMsg(m)
	}
	return cn.sendTimeout(m, cn.wt)
}

// sendTimeout writes one frame directly under an explicit deadline,
// bypassing the writer queue — the handshake, teardown and departure
// paths use it so their frames cannot queue behind bulk traffic (and
// the graceful paths use a shorter deadline than ordinary sends so
// Close cannot stall on a dead partner).
func (cn *conn) sendTimeout(m protocol.Message, wt time.Duration) error {
	cn.wmu.Lock()
	defer cn.wmu.Unlock()
	if err := cn.c.SetWriteDeadline(time.Now().Add(wt)); err != nil {
		return fmt.Errorf("netpeer: set write deadline: %w", err)
	}
	bp := encPool.Get().(*[]byte)
	buf, err := protocol.AppendFrame((*bp)[:0], m)
	if err != nil {
		encPool.Put(bp)
		return err
	}
	_, werr := cn.c.Write(buf)
	size := len(buf)
	*bp = buf[:0]
	encPool.Put(bp)
	if werr != nil {
		return fmt.Errorf("protocol: frame write: %w", werr)
	}
	if cn.n != nil {
		cn.n.stats.countFrame(m.Type, size)
		cn.n.stats.writeCalls.Add(1)
		cn.n.stats.bytesSent.Add(uint64(size))
	}
	return nil
}

type pushKey struct {
	peer int32
	sub  int
}

// Node is a networked Coolstreaming peer: it accepts partnerships,
// exchanges buffer maps, serves sub-stream subscriptions from its
// buffers, and receives pushed blocks into them.
type Node struct {
	cfg     Config
	bkt     *bucket
	ln      net.Listener
	payload []byte // shared synthetic block content

	mu      sync.Mutex
	cond    *sync.Cond
	conns   map[int32]*conn
	pushers map[pushKey]*pusherState
	lastBM  map[int32]buffer.BufferMap
	// lastBMAt stamps each lastBM refresh so the adaptation planner can
	// expire a hung partner's frozen map (see planSwitchLocked).
	lastBMAt map[int32]time.Time
	// lastSeen stamps the last inbound frame of ANY kind per partner —
	// the liveness signal the maintenance loop checks against its
	// staleness deadline. Seeded at registration time.
	lastSeen map[int32]time.Time
	// mcache is the local membership cache (§II): gossiped and
	// tracker-fetched candidates the maintenance loop replenishes from.
	mcache map[int32]mcacheEntry
	// failedDial cool-downs recently unreachable candidates so the
	// replenisher doesn't hammer dead addresses the tracker still lists.
	failedDial map[int32]time.Time
	rec        RecoveryStats
	// boot and selfAddr are set by EnableMaintenance: the tracker
	// surface used for re-bootstrap and the address re-registered there.
	boot     Bootstrap
	selfAddr string
	mgr      ManagerConfig
	// laneParent tracks which partner serves each sub-stream, for the
	// adaptation monitor (see adapt.go). -1 = untracked.
	laneParent []int32
	sb         *buffer.SyncBuffer
	cb         *buffer.CacheBuffer
	started    bool
	source     bool
	start      int64
	ready      bool
	readyAt    time.Time
	onTime     int64
	total      int64
	closed     bool
	// done is closed exactly once by Close so ticker-driven loops (BM
	// exchange, adaptation monitor) observe shutdown immediately instead
	// of on their next tick.
	done chan struct{}

	// hsReserved counts inbound handshakes that passed the partner-cap
	// check but have not registered yet: the cap is enforced against
	// len(conns)+hsReserved so two concurrent handshakes cannot both
	// squeeze through the last slot. Guarded by mu.
	hsReserved int
	// hsSem bounds concurrent inbound handshake goroutines; nil =
	// unlimited.
	hsSem chan struct{}

	// stats are the data-plane counters (see stats.go); fanMu guards the
	// shared fan-out frame cache (see fanFrame in writer.go). adm are
	// the admission-control counters (see admission.go).
	adm      admissionStats
	stats    netStats
	fanMu    sync.Mutex
	fanCache map[fanKey][]byte
	fanOrder []fanKey
	fanPos   int

	wg sync.WaitGroup
}

// New creates a node. Call InitBuffers (or StartSource) before
// subscribing, and Listen before advertising the address.
func New(cfg Config) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = DefaultWriteTimeout
	}
	if cfg.FlushBytes <= 0 {
		cfg.FlushBytes = defaultFlushBytes
	}
	if cfg.FlushDelay == 0 {
		cfg.FlushDelay = defaultFlushDelay
	} else if cfg.FlushDelay < 0 {
		cfg.FlushDelay = 0
	}
	if cfg.QueueBytes <= 0 {
		cfg.QueueBytes = defaultQueueBytes
	}
	if cfg.BMKeyframeEvery <= 0 {
		cfg.BMKeyframeEvery = defaultBMKeyframeEvery
	}
	if cfg.MaxFrameBytes <= 0 {
		cfg.MaxFrameBytes = cfg.Layout.BlockBytes + 4096
		if cfg.MaxFrameBytes < 16*1024 {
			cfg.MaxFrameBytes = 16 * 1024
		}
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	if cfg.HandshakeTimeout == 0 {
		cfg.HandshakeTimeout = DefaultHandshakeTimeout
	}
	if cfg.MaxPendingHandshakes == 0 {
		cfg.MaxPendingHandshakes = defaultPendingHandshakes
	}
	if cfg.RejectAlternates == 0 {
		cfg.RejectAlternates = defaultRejectAlternates
	} else if cfg.RejectAlternates < 0 {
		cfg.RejectAlternates = 0
	}
	n := &Node{
		cfg:        cfg,
		bkt:        newBucket(cfg.UploadBps),
		payload:    make([]byte, cfg.Layout.BlockBytes),
		conns:      make(map[int32]*conn),
		pushers:    make(map[pushKey]*pusherState),
		lastBM:     make(map[int32]buffer.BufferMap),
		lastBMAt:   make(map[int32]time.Time),
		lastSeen:   make(map[int32]time.Time),
		mcache:     make(map[int32]mcacheEntry),
		failedDial: make(map[int32]time.Time),
		laneParent: make([]int32, cfg.Layout.K),
		done:       make(chan struct{}),
	}
	for j := range n.laneParent {
		n.laneParent[j] = -1
	}
	if cfg.MaxPendingHandshakes > 0 {
		n.hsSem = make(chan struct{}, cfg.MaxPendingHandshakes)
	}
	n.cond = sync.NewCond(&n.mu)
	return n, nil
}

// pusherState lets a subscription be cancelled (unsubscribe or
// adaptation switch).
type pusherState struct{ stop bool }

// InitBuffers prepares the receive path starting at the per-sub-stream
// sequence startSeq (the Tp-shifted join position).
func (n *Node) InitBuffers(startSeq int64) error {
	k := int64(n.cfg.Layout.K)
	sb, err := buffer.NewSyncBuffer(n.cfg.Layout, startSeq*k)
	if err != nil {
		return err
	}
	cb, err := buffer.NewCacheBuffer(n.cfg.BufferBlocks*k, startSeq*k)
	if err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started {
		return fmt.Errorf("netpeer: buffers already initialised")
	}
	n.sb, n.cb = sb, cb
	n.start = startSeq
	n.started = true
	return nil
}

// Listen starts accepting partnerships on a loopback port and the
// periodic BM exchange. Returns the bound address.
func (n *Node) Listen() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	n.ln = ln
	n.wg.Add(2)
	go n.acceptLoop()
	go n.bmLoop()
	return ln.Addr().String(), nil
}

// Addr returns the listen address ("" before Listen).
func (n *Node) Addr() string {
	if n.ln == nil {
		return ""
	}
	return n.ln.Addr().String()
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if n.hsSem != nil {
			select {
			case n.hsSem <- struct{}{}:
			default:
				// Handshake concurrency bound hit: shed the connection
				// before spending a goroutine on it. The dialer sees a
				// closed socket and retries through its backoff.
				n.adm.handshakesShed.Add(1)
				c.Close()
				continue
			}
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.handleInbound(c)
		}()
	}
}

// handleInbound performs the accept side of the partnership handshake.
func (n *Node) handleInbound(c net.Conn) {
	// Release the handshake slot exactly once: on every early return,
	// or as soon as the partnership is registered (the readLoop may run
	// for hours; it must not hold a handshake slot).
	released := n.hsSem == nil
	releaseHS := func() {
		if !released {
			released = true
			<-n.hsSem
		}
	}
	defer releaseHS()
	c.SetReadDeadline(time.Now().Add(n.cfg.HandshakeTimeout))
	fr := protocol.NewFrameReaderLimit(c, n.cfg.MaxFrameBytes)
	req, err := fr.Read()
	if err != nil || req.Type != protocol.TypePartnerRequest {
		c.Close()
		return
	}
	cn := &conn{peer: req.From, wt: n.cfg.WriteTimeout, c: c, n: n}
	if req.Addr != "" && req.From != n.cfg.ID {
		// The dialer advertised its listen address: remember it so the
		// membership gossip can pass it onwards.
		n.mcacheAdd(req.From, req.Addr)
	}
	if req.From == n.cfg.ID {
		// A request claiming our own ID (self-dial through a tracker
		// echo, or an impersonating peer) must not reach the conns map:
		// registering it would record a self-partnership and evict any
		// legitimate conn keyed on our ID.
		cn.send(protocol.Message{Type: protocol.TypePartnerReject, From: n.cfg.ID, To: req.From})
		c.Close()
		return
	}
	if !n.reservePartnerSlot(req.From) {
		// Admission control: the partner set is full. Reject, but hand
		// the joiner alternates from the mCache so the storm spreads
		// across the overlay instead of dead-ending here (§II mCache —
		// the same candidates gossip would have carried).
		n.adm.partnersRejected.Add(1)
		cn.send(protocol.Message{
			Type: protocol.TypePartnerReject, From: n.cfg.ID, To: req.From,
			Entries: n.rejectAlternates(req.From),
		})
		c.Close()
		return
	}
	if err := cn.send(protocol.Message{Type: protocol.TypePartnerAccept, From: n.cfg.ID, To: req.From}); err != nil {
		n.releasePartnerSlot()
		c.Close()
		return
	}
	c.SetReadDeadline(time.Time{})
	if n.registerReserved(cn) != regLive {
		c.Close()
		return
	}
	n.adm.partnersAdmitted.Add(1)
	releaseHS()
	n.readLoop(cn, fr)
}

// Connect establishes a partnership towards addr and returns the
// remote node's ID. When a concurrent inbound connection from the same
// peer already won the duplicate tie-break, Connect reports success
// over that surviving connection. A full peer's admission reject comes
// back as a *RejectedError whose alternates (already merged into the
// mCache) give the caller somewhere else to try.
func (n *Node) Connect(addr string) (int32, error) {
	dial := n.cfg.Dialer
	if dial == nil {
		dial = net.DialTimeout
	}
	c, err := dial("tcp", addr, n.cfg.DialTimeout)
	if err != nil {
		return 0, err
	}
	cn := &conn{outgoing: true, wt: n.cfg.WriteTimeout, c: c, n: n}
	if err := cn.send(protocol.Message{Type: protocol.TypePartnerRequest, From: n.cfg.ID, To: -1, Addr: n.Addr()}); err != nil {
		c.Close()
		return 0, err
	}
	c.SetReadDeadline(time.Now().Add(n.cfg.HandshakeTimeout))
	fr := protocol.NewFrameReaderLimit(c, n.cfg.MaxFrameBytes)
	resp, err := fr.Read()
	if err != nil {
		// I/O failure: the peer vanished or sent a malformed frame.
		c.Close()
		return 0, fmt.Errorf("netpeer: handshake read: %w", err)
	}
	if resp.Type == protocol.TypePartnerReject {
		// The peer is full (or refused us). Keep its alternates: they
		// are live candidates the rejecting node vouches for, exactly
		// what the next dial attempt needs.
		c.Close()
		n.adm.rejectsReceived.Add(1)
		var alts []protocol.PeerEntry
		if len(resp.Entries) > 0 {
			alts = append(alts, resp.Entries...)
			n.mcacheMerge(alts)
		}
		return 0, &RejectedError{Peer: resp.From, Alternates: alts}
	}
	if resp.Type != protocol.TypePartnerAccept {
		// The peer answered but spoke out of protocol — a different
		// failure from the read error above.
		c.Close()
		return 0, fmt.Errorf("netpeer: handshake rejected: got %v from %d", resp.Type, resp.From)
	}
	c.SetReadDeadline(time.Time{})
	cn.peer = resp.From
	switch n.register(cn) {
	case regClosed:
		c.Close()
		return 0, fmt.Errorf("netpeer: node closed")
	case regDuplicate:
		// A simultaneous inbound conn from this peer won the tie-break;
		// the partnership is live on that conn.
		c.Close()
		return resp.From, nil
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.readLoop(cn, fr)
	}()
	return resp.From, nil
}

// regStatus is register's outcome.
type regStatus int

const (
	// regLive means cn is now the partnership's connection.
	regLive regStatus = iota
	// regDuplicate means an existing connection won the tie-break and
	// cn must be discarded by the caller.
	regDuplicate
	// regClosed means the node is shut down.
	regClosed
)

// register installs cn as the connection towards cn.peer. When both
// ends dial each other concurrently, each end briefly holds two conns
// for the same partnership; keeping an arbitrary one lets the two ends
// evict opposite conns and close both. The tie-break is therefore
// direction-based and identical on both ends: the connection dialed by
// the lower-ID node survives (the dialer sees it as outgoing, the
// acceptor as incoming, so both resolve to the same TCP connection). A
// same-direction duplicate is a reconnect and supersedes the stale conn.
func (n *Node) register(cn *conn) regStatus { return n.registerConn(cn, false) }

// registerReserved is register for an inbound conn holding a partner
// slot reservation from reservePartnerSlot; the reservation converts
// into (or is consumed by) the registration atomically.
func (n *Node) registerReserved(cn *conn) regStatus { return n.registerConn(cn, true) }

func (n *Node) registerConn(cn *conn, reserved bool) regStatus {
	n.mu.Lock()
	defer n.mu.Unlock()
	if reserved {
		n.hsReserved--
	}
	if n.closed {
		return regClosed
	}
	old, dup := n.conns[cn.peer]
	if dup && old.outgoing != cn.outgoing && cn.outgoing != (n.cfg.ID < cn.peer) {
		return regDuplicate
	}
	if dup {
		old.c.Close()
	}
	n.conns[cn.peer] = cn
	n.lastSeen[cn.peer] = time.Now()
	if !n.cfg.LegacyPlane {
		// Attach the batched writer now, while cn is still invisible to
		// other senders; a conn that lost the tie-break never gets one.
		cn.startWriter()
	}
	return regLive
}

// dropPartnerLocked removes a partnership exactly as the readLoop
// teardown does: the conn is forgotten, its buffer map expired, and any
// lane it served orphaned for the adaptation monitor. The caller closes
// cn.c outside the lock; the conn's readLoop defer then finds the map
// entry already gone and no-ops.
func (n *Node) dropPartnerLocked(cn *conn) {
	if n.conns[cn.peer] != cn {
		return
	}
	delete(n.conns, cn.peer)
	delete(n.lastBM, cn.peer)
	delete(n.lastBMAt, cn.peer)
	delete(n.lastSeen, cn.peer)
	for j, p := range n.laneParent {
		if p == cn.peer {
			n.laneParent[j] = -1
		}
	}
}

// readLoop dispatches inbound messages until the connection dies.
func (n *Node) readLoop(cn *conn, fr *protocol.FrameReader) {
	defer func() {
		// Retire the batched writer first so it stops touching the conn,
		// then tear the partnership down.
		cn.closeQueue(errConnClosed)
		cn.c.Close()
		n.mu.Lock()
		// Partner death: drop the conn, forget its stale buffer map
		// (it must not keep feeding the adaptation inequalities),
		// and orphan any lane it was serving so the monitor's next
		// pass re-subscribes it elsewhere.
		n.dropPartnerLocked(cn)
		n.mu.Unlock()
	}()
	// One message reused across frames: every handler below either
	// copies what it keeps (BM.Clone, mcacheAdd's strings) or finishes
	// with the data before the next ReadInto overwrites it.
	var m protocol.Message
	for {
		if err := fr.ReadInto(&m); err != nil {
			return
		}
		// Any frame proves the partner's control loop alive.
		n.mu.Lock()
		n.lastSeen[cn.peer] = time.Now()
		n.mu.Unlock()
		switch m.Type {
		case protocol.TypeBMExchange:
			n.mu.Lock()
			n.lastBM[cn.peer] = m.BM.Clone()
			n.lastBMAt[cn.peer] = time.Now()
			n.mu.Unlock()
		case protocol.TypeBMDelta:
			n.applyBMDelta(cn, m.Delta)
		case protocol.TypeBMAck:
			n.mu.Lock()
			if m.AckEpoch == cn.bmEpoch {
				cn.bmAcked = true
			}
			n.mu.Unlock()
		case protocol.TypeSubscribe:
			n.startPusher(cn, int(m.SubStream), m.StartSeq)
		case protocol.TypeUnsubscribe:
			n.stopPusher(cn.peer, int(m.SubStream))
			// Bidirectional teardown: a parent whose pusher died sends
			// the same frame so the child orphans the lane immediately
			// instead of waiting out the adaptation inequalities.
			n.orphanLaneFrom(cn.peer, int(m.SubStream))
		case protocol.TypeBlockPush:
			n.receiveBlock(int(m.SubStream), m.StartSeq, m.Payload)
		case protocol.TypeMCacheRequest:
			if reply, ok := n.buildMCacheReply(cn.peer, int(m.Want)); ok {
				cn.send(reply)
			}
		case protocol.TypeMCacheReply:
			n.mcacheMerge(m.Entries)
		case protocol.TypePing:
			// Liveness only; already noted above.
		case protocol.TypeLeave:
			// Graceful departure: forget the peer entirely — gossiping
			// or redialing a departed address only wastes a replenish
			// round.
			n.mu.Lock()
			delete(n.mcache, cn.peer)
			n.mu.Unlock()
			return
		}
	}
}

// applyBMDelta folds one differential buffer-map update into the
// partner's tracked map. A keyframe (absolute delta) replaces the map,
// establishes the conn's receive epoch and is acknowledged, closing the
// sender's resync loop; a relative delta applies only when it chains
// cleanly (epoch matches and a base map exists) — otherwise it is
// dropped and the map simply goes stale until the sender's next
// keyframe, exactly as if the frame were lost.
func (n *Node) applyBMDelta(cn *conn, d protocol.BMDelta) {
	ack := false
	n.mu.Lock()
	if d.Absolute {
		if bm, err := protocol.ApplyBMDelta(buffer.BufferMap{}, d); err == nil {
			n.lastBM[cn.peer] = bm
			n.lastBMAt[cn.peer] = time.Now()
			cn.rxEpoch, cn.rxHave = d.Epoch, true
			ack = true
		}
	} else if cn.rxHave && d.Epoch == cn.rxEpoch {
		if base, ok := n.lastBM[cn.peer]; ok {
			if bm, err := protocol.ApplyBMDelta(base, d); err == nil {
				n.lastBM[cn.peer] = bm
				n.lastBMAt[cn.peer] = time.Now()
			}
		}
	}
	n.mu.Unlock()
	if ack {
		cn.send(protocol.Message{
			Type: protocol.TypeBMAck, From: n.cfg.ID, To: cn.peer, AckEpoch: d.Epoch,
		})
	}
}

// orphanLaneFrom resets lane j if peer is its tracked parent — the
// receive side of a parent's pusher-teardown notice.
func (n *Node) orphanLaneFrom(peer int32, j int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if j >= 0 && j < len(n.laneParent) && n.laneParent[j] == peer {
		n.laneParent[j] = -1
	}
}

// Subscribe asks partner peerID to push sub-stream j from startSeq.
func (n *Node) Subscribe(peerID int32, j int, startSeq int64) error {
	n.mu.Lock()
	cn := n.conns[peerID]
	n.mu.Unlock()
	if cn == nil {
		return fmt.Errorf("netpeer: no partnership with %d", peerID)
	}
	return cn.send(protocol.Message{
		Type: protocol.TypeSubscribe, From: n.cfg.ID, To: peerID,
		SubStream: int16(j), StartSeq: startSeq,
	})
}

// startPusher serves one (child, sub-stream) subscription: it pushes
// every block from startSeq on, pacing on the shared upload bucket, and
// waits for new blocks when caught up.
func (n *Node) startPusher(cn *conn, j int, startSeq int64) {
	key := pushKey{peer: cn.peer, sub: j}
	st := &pusherState{}
	n.mu.Lock()
	if n.closed || n.pushers[key] != nil {
		n.mu.Unlock()
		return
	}
	if n.cfg.UploadSlots > 0 && (len(n.pushers) >= n.cfg.UploadSlots || !n.started) {
		// Upload admission: the slot budget is spent (or this node has
		// nothing to serve yet). Refuse loudly — an Unsubscribe notice
		// makes the child orphan the lane and re-plan now, instead of
		// waiting out the adaptation inequalities on a silent lane.
		n.mu.Unlock()
		n.adm.subscribesRejected.Add(1)
		cn.sendTimeout(protocol.Message{
			Type: protocol.TypeUnsubscribe, From: n.cfg.ID, To: cn.peer, SubStream: int16(j),
		}, leaveTimeout(cn.wt))
		return
	}
	n.pushers[key] = st
	n.mu.Unlock()

	blockBits := float64(8 * n.cfg.Layout.BlockBytes)
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		defer func() {
			n.mu.Lock()
			if n.pushers[key] == st {
				delete(n.pushers, key)
			}
			n.mu.Unlock()
		}()
		next := startSeq
		for {
			n.mu.Lock()
			for !n.closed && !st.stop && (n.sb == nil || n.sb.Latest(j) < next) {
				n.cond.Wait()
			}
			if n.closed || st.stop {
				n.mu.Unlock()
				return
			}
			n.mu.Unlock()
			if !n.bkt.take(blockBits) {
				n.abortPusher(cn, j)
				return
			}
			var err error
			if cn.writerOn {
				// Shared fan-out: the block is encoded once per (j, seq)
				// and every child's writer enqueues the same buffer.
				var frame []byte
				if frame, err = n.fanFrame(j, next); err == nil {
					err = cn.enqueueShared(frame)
				}
			} else {
				err = cn.send(protocol.Message{
					Type: protocol.TypeBlockPush, From: n.cfg.ID, To: cn.peer,
					SubStream: int16(j), StartSeq: next, Payload: n.payload,
				})
			}
			if err != nil {
				n.abortPusher(cn, j)
				return
			}
			next++
		}
	}()
}

// abortPusher handles a pusher dying abnormally (bucket closed or send
// error): a best-effort teardown notice tells the child to orphan the
// lane immediately instead of discovering the stall via the adaptation
// inequalities. Errors are ignored — the conn may be the reason the
// pusher died.
func (n *Node) abortPusher(cn *conn, j int) {
	n.mu.Lock()
	if n.closed {
		// Close sends Leave itself; a second frame is noise.
		n.mu.Unlock()
		return
	}
	n.rec.PusherAborts++
	n.mu.Unlock()
	cn.sendTimeout(protocol.Message{
		Type: protocol.TypeUnsubscribe, From: n.cfg.ID, To: cn.peer, SubStream: int16(j),
	}, leaveTimeout(cn.wt))
}

// leaveTimeout caps teardown-path writes at one second so shutdown and
// abort notices never stall on a dead peer's full write timeout.
func leaveTimeout(wt time.Duration) time.Duration {
	if wt > time.Second {
		return time.Second
	}
	return wt
}

// stopPusher cancels the pusher serving (peer, sub-stream), if any.
func (n *Node) stopPusher(peer int32, j int) {
	n.mu.Lock()
	if st := n.pushers[pushKey{peer: peer, sub: j}]; st != nil {
		st.stop = true
	}
	n.cond.Broadcast()
	n.mu.Unlock()
}

// receiveBlock lands a pushed block in the buffers and updates
// playback state.
func (n *Node) receiveBlock(j int, seq int64, payload []byte) {
	if len(payload) != n.cfg.Layout.BlockBytes {
		return // malformed push; drop
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.started || n.closed {
		return
	}
	combined, err := n.sb.Receive(j, seq)
	if err != nil {
		return
	}
	n.stats.blocksReceived.Add(1)
	if combined > 0 {
		n.cb.Append(combined)
	}
	now := time.Now()
	k := int64(n.cfg.Layout.K)
	if !n.ready && n.sb.Combined() >= (n.start+n.cfg.ReadyBlocks)*k {
		n.ready = true
		n.readyAt = now
	}
	if n.ready && !n.source {
		dueSec := n.cfg.Layout.SeqToSeconds(float64(seq - n.start))
		due := n.readyAt.Add(time.Duration(dueSec * float64(time.Second)))
		n.total++
		if !now.After(due) {
			n.onTime++
		}
	}
	n.cond.Broadcast()
}

// StartSource turns the node into the stream origin: blocks appear in
// its buffers at the live rate, driving all pushers.
func (n *Node) StartSource() error {
	if err := n.InitBuffers(0); err != nil {
		return err
	}
	n.mu.Lock()
	n.source = true
	n.ready = true
	n.readyAt = time.Now()
	n.mu.Unlock()
	interval := time.Duration(float64(time.Second) / n.cfg.Layout.BlocksPerSecond())
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		var g int64
		for {
			n.mu.Lock()
			if n.closed {
				n.mu.Unlock()
				return
			}
			j := n.cfg.Layout.SubStream(g)
			seq := n.cfg.Layout.Seq(g)
			if combined, err := n.sb.Receive(j, seq); err == nil && combined > 0 {
				n.cb.Append(combined)
			}
			n.cond.Broadcast()
			n.mu.Unlock()
			g++
			<-ticker.C
		}
	}()
	return nil
}

// bmLoop periodically sends the node's buffer map to every partner.
// On the batched plane most exchanges are BMDelta frames: the changes
// versus the last map sent on that conn, with an absolute keyframe
// every BMKeyframeEvery exchanges (and after an unacknowledged keyframe
// outlives its grace) so a receiver that lost sync converges on the
// next keyframe. A reconnect is a new conn, so it always starts with a
// keyframe. Legacy conns keep receiving full BMExchange maps.
func (n *Node) bmLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.BMPeriod)
	defer ticker.Stop()
	var bm buffer.BufferMap // reused across ticks; copied at encode time
	conns := make([]*conn, 0, 8)
	for {
		select {
		case <-ticker.C:
		case <-n.done:
			return
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			return
		}
		started := n.started
		if started {
			bm.Reset(n.cfg.Layout.K)
			for j := 0; j < n.cfg.Layout.K; j++ {
				bm.Latest[j] = n.sb.Latest(j)
				bm.Subscribed[j] = false
			}
		}
		conns = conns[:0]
		for _, cn := range n.conns {
			conns = append(conns, cn)
		}
		n.mu.Unlock()
		// One clone shared (read-only) as every batched conn's bmSent
		// base for next tick's diff.
		var tickBM buffer.BufferMap
		for _, cn := range conns {
			var m protocol.Message
			switch {
			case !started:
				// Nothing to advertise yet (buffers not initialised):
				// heartbeat instead, so partners can tell a quiet node
				// from a hung one.
				m = protocol.Message{Type: protocol.TypePing, From: n.cfg.ID, To: cn.peer}
			case !cn.writerOn || n.cfg.Layout.K > protocol.MaxDeltaLanes:
				m = protocol.Message{Type: protocol.TypeBMExchange, From: n.cfg.ID, To: cn.peer, BM: bm}
			default:
				if tickBM.K() == 0 {
					tickBM = bm.Clone()
				}
				m = protocol.Message{Type: protocol.TypeBMDelta, From: n.cfg.ID, To: cn.peer}
				n.mu.Lock()
				key := !cn.bmHave || cn.bmSinceKey+1 >= n.cfg.BMKeyframeEvery ||
					(!cn.bmAcked && cn.bmSinceKey+1 > bmAckGrace)
				var d protocol.BMDelta
				var derr error
				if !key {
					d, derr = protocol.DiffBM(cn.bmSent, tickBM, cn.bmEpoch)
					key = derr != nil
				}
				if key {
					cn.bmEpoch++
					d, derr = protocol.KeyBM(tickBM, cn.bmEpoch)
					cn.bmAcked, cn.bmSinceKey = false, 0
				} else {
					cn.bmSinceKey++
				}
				cn.bmSent, cn.bmHave = tickBM, derr == nil
				n.mu.Unlock()
				if derr != nil {
					continue // unreachable with a validated layout
				}
				m.Delta = d
			}
			if err := cn.send(m); err != nil {
				cn.bmFails++
				if cn.bmFails >= bmFailLimit {
					// A partner that persistently cannot take BM traffic
					// is dead weight for the adaptation planner: tear it
					// down through the maintenance path instead of
					// silently failing forever.
					n.mu.Lock()
					n.dropPartnerLocked(cn)
					n.rec.BMFailTeardowns++
					n.mu.Unlock()
					cn.c.Close()
				}
				continue
			}
			cn.bmFails = 0
		}
	}
}

// Latest returns the latest received sequence on sub-stream j (-1
// before InitBuffers).
func (n *Node) Latest(j int) int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.started {
		return -1
	}
	return n.sb.Latest(j)
}

// Combined returns the combined contiguous prefix in global blocks.
func (n *Node) Combined() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.started {
		return 0
	}
	return n.sb.Combined()
}

// Ready reports whether playback started.
func (n *Node) Ready() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ready
}

// Continuity returns on-time blocks over due blocks (1 before any
// block was due).
func (n *Node) Continuity() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.total == 0 {
		return 1
	}
	return float64(n.onTime) / float64(n.total)
}

// PartnerBM returns the last buffer map received from a partner.
func (n *Node) PartnerBM(peer int32) (buffer.BufferMap, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	bm, ok := n.lastBM[peer]
	return bm, ok
}

// Partners returns the current partner IDs.
func (n *Node) Partners() []int32 {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]int32, 0, len(n.conns))
	for id := range n.conns {
		out = append(out, id)
	}
	return out
}

// Close shuts the node down gracefully — partners get a Leave frame
// (under a short write deadline, so a dead partner cannot stall
// shutdown), the tracker a Leave call if maintenance attached one —
// and waits for its goroutines.
func (n *Node) Close() { n.shutdown(true) }

// Abort shuts the node down WITHOUT announcing departure: no Leave
// frames, no tracker deregistration. Partners see the TCP connections
// die, exactly as with a crashed or power-cycled peer — the chaos
// harness's peer-kill primitive.
func (n *Node) Abort() { n.shutdown(false) }

func (n *Node) shutdown(graceful bool) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	close(n.done)
	n.cond.Broadcast()
	conns := make([]*conn, 0, len(n.conns))
	for _, cn := range n.conns {
		conns = append(conns, cn)
	}
	boot := n.boot
	n.mu.Unlock()
	n.bkt.close()
	if n.ln != nil {
		n.ln.Close()
	}
	for _, cn := range conns {
		if graceful {
			cn.sendTimeout(protocol.Message{Type: protocol.TypeLeave, From: n.cfg.ID, To: cn.peer},
				leaveTimeout(cn.wt))
		}
		cn.c.Close()
	}
	if graceful && boot != nil {
		// Best-effort tracker deregistration, mirroring the Leave frames.
		boot.Leave(n.cfg.ID)
	}
	n.wg.Wait()
}
