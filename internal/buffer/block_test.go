package buffer

import (
	"math"
	"testing"
	"testing/quick"

	"coolstream/internal/sim"
)

var testLayout = Layout{K: 4, RateBps: 768e3, BlockBytes: 12000}

func TestLayoutValidate(t *testing.T) {
	if err := testLayout.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Layout{
		{K: 0, RateBps: 1, BlockBytes: 1},
		{K: 1, RateBps: 0, BlockBytes: 1},
		{K: 1, RateBps: 1, BlockBytes: 0},
	}
	for i, l := range bad {
		if l.Validate() == nil {
			t.Errorf("bad layout %d validated", i)
		}
	}
}

func TestLayoutRates(t *testing.T) {
	// 768 kbps / (8 * 12000 B) = 8 blocks/s globally, 2 per sub-stream.
	if got := testLayout.BlocksPerSecond(); math.Abs(got-8) > 1e-12 {
		t.Fatalf("BlocksPerSecond = %v", got)
	}
	if got := testLayout.SubBlocksPerSecond(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("SubBlocksPerSecond = %v", got)
	}
	if got := testLayout.SubRateBps(); math.Abs(got-192e3) > 1e-9 {
		t.Fatalf("SubRateBps = %v", got)
	}
}

func TestGlobalSeqRoundTrip(t *testing.T) {
	f := func(seqRaw int32, subRaw uint8) bool {
		seq := int64(seqRaw % 1e6)
		if seq < 0 {
			seq = -seq
		}
		sub := int(subRaw) % testLayout.K
		g := testLayout.Global(sub, seq)
		return testLayout.SubStream(g) == sub && testLayout.Seq(g) == seq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSubStreamInterleaving(t *testing.T) {
	// Consecutive global blocks cycle through sub-streams.
	for g := int64(0); g < 12; g++ {
		if got := testLayout.SubStream(g); got != int(g%4) {
			t.Fatalf("SubStream(%d) = %d", g, got)
		}
	}
	if testLayout.Seq(0) != 0 || testLayout.Seq(3) != 0 || testLayout.Seq(4) != 1 {
		t.Fatal("Seq boundaries wrong")
	}
}

func TestGlobalAtAndInverse(t *testing.T) {
	at := testLayout.GlobalAt(10 * sim.Second)
	if math.Abs(at-80) > 1e-9 {
		t.Fatalf("GlobalAt(10s) = %v, want 80", at)
	}
	if got := testLayout.TimeOfGlobal(80); got != 10*sim.Second {
		t.Fatalf("TimeOfGlobal(80) = %v", got)
	}
}

func TestSeqSecondsRoundTrip(t *testing.T) {
	s := testLayout.SeqToSeconds(10) // 10 sub-blocks at 2/s = 5s
	if math.Abs(s-5) > 1e-12 {
		t.Fatalf("SeqToSeconds(10) = %v", s)
	}
	if got := testLayout.SecondsToSeq(s); math.Abs(got-10) > 1e-12 {
		t.Fatalf("SecondsToSeq(%v) = %v", s, got)
	}
}
