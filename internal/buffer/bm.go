package buffer

import (
	"encoding/binary"
	"fmt"
)

// BufferMap is the 2K-tuple of §III-C: for each of the K sub-streams,
// the sequence number of the latest received block (Latest), and the
// subscription state towards the partner the map is sent to
// (Subscribed, true when the sender pulls that sub-stream from the
// receiving partner).
type BufferMap struct {
	Latest     []int64
	Subscribed []bool
}

// NewBufferMap allocates a zeroed buffer map for k sub-streams.
func NewBufferMap(k int) BufferMap {
	return BufferMap{Latest: make([]int64, k), Subscribed: make([]bool, k)}
}

// K returns the number of sub-streams described.
func (m BufferMap) K() int { return len(m.Latest) }

// Reset resizes the map to k sub-streams, reusing existing storage
// when possible so periodic BM refreshes need not allocate. Entries
// are left uninitialised: the caller must overwrite all k slots.
func (m *BufferMap) Reset(k int) {
	if cap(m.Latest) >= k && cap(m.Subscribed) >= k {
		m.Latest = m.Latest[:k]
		m.Subscribed = m.Subscribed[:k]
		return
	}
	m.Latest = make([]int64, k)
	m.Subscribed = make([]bool, k)
}

// Clone returns a deep copy.
func (m BufferMap) Clone() BufferMap {
	c := BufferMap{
		Latest:     append([]int64(nil), m.Latest...),
		Subscribed: append([]bool(nil), m.Subscribed...),
	}
	return c
}

// MaxLatest returns the largest Latest entry (used by Inequality (2)'s
// max over partners).
func (m BufferMap) MaxLatest() int64 {
	if len(m.Latest) == 0 {
		return 0
	}
	max := m.Latest[0]
	for _, v := range m.Latest[1:] {
		if v > max {
			max = v
		}
	}
	return max
}

// Validate checks structural consistency.
func (m BufferMap) Validate() error {
	if len(m.Latest) == 0 {
		return fmt.Errorf("buffer: empty buffer map")
	}
	if len(m.Latest) != len(m.Subscribed) {
		return fmt.Errorf("buffer: buffer map K mismatch: %d latest vs %d subscribed",
			len(m.Latest), len(m.Subscribed))
	}
	return nil
}

// MarshalBinary encodes the map as:
//
//	uint16 K | K × int64 latest | ceil(K/8) subscription bitmap
//
// matching the compact wire form a real implementation would exchange
// every BM period.
func (m BufferMap) MarshalBinary() ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	k := len(m.Latest)
	buf := make([]byte, 2+8*k+(k+7)/8)
	binary.BigEndian.PutUint16(buf[0:2], uint16(k))
	off := 2
	for _, v := range m.Latest {
		binary.BigEndian.PutUint64(buf[off:off+8], uint64(v))
		off += 8
	}
	for i, s := range m.Subscribed {
		if s {
			buf[off+i/8] |= 1 << (i % 8)
		}
	}
	return buf, nil
}

// UnmarshalBinary decodes the MarshalBinary form.
func (m *BufferMap) UnmarshalBinary(data []byte) error {
	if len(data) < 2 {
		return fmt.Errorf("buffer: buffer map truncated header")
	}
	k := int(binary.BigEndian.Uint16(data[0:2]))
	if k == 0 {
		return fmt.Errorf("buffer: buffer map K = 0")
	}
	want := 2 + 8*k + (k+7)/8
	if len(data) != want {
		return fmt.Errorf("buffer: buffer map length %d, want %d for K=%d", len(data), want, k)
	}
	m.Latest = make([]int64, k)
	m.Subscribed = make([]bool, k)
	off := 2
	for i := range m.Latest {
		m.Latest[i] = int64(binary.BigEndian.Uint64(data[off : off+8]))
		off += 8
	}
	for i := range m.Subscribed {
		m.Subscribed[i] = data[off+i/8]&(1<<(i%8)) != 0
	}
	// Reject set bits past lane K in the bitmap's last byte: the
	// encoder never produces them, so accepting them would give the
	// same map two wire forms.
	if tail := k % 8; tail != 0 && data[len(data)-1]&^byte(1<<tail-1) != 0 {
		return fmt.Errorf("buffer: buffer map bitmap sets bits past lane %d", k)
	}
	return nil
}
