package buffer

import (
	"testing"
	"testing/quick"

	"coolstream/internal/xrand"
)

func mustSync(t *testing.T, l Layout, start int64) *SyncBuffer {
	t.Helper()
	b, err := NewSyncBuffer(l, start)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSyncBufferPaperExample(t *testing.T) {
	// Fig. 2b: K=4; the combination stops awaiting sub-stream 4's
	// (index 3) block with sequence 8. We reproduce: lanes 0..2 have
	// blocks up to seq 8, lane 3 only to seq 7 — combined prefix must
	// stop exactly at global block Global(3, 8).
	l := Layout{K: 4, RateBps: 768e3, BlockBytes: 12000}
	b := mustSync(t, l, l.Global(0, 7)) // start at seq 7
	for seq := int64(7); seq <= 8; seq++ {
		for sub := 0; sub < 4; sub++ {
			if sub == 3 && seq == 8 {
				continue // the missing block
			}
			if _, err := b.Receive(sub, seq); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got, want := b.Combined(), l.Global(3, 8); got != want {
		t.Fatalf("combined prefix %d, want %d (stop at missing 4th-lane block)", got, want)
	}
	// The missing block arrives; combination resumes through seq 8.
	n, err := b.Receive(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("resumed combination combined %d blocks, want 1", n)
	}
	if got, want := b.Combined(), l.Global(0, 9); got != want {
		t.Fatalf("combined prefix %d, want %d", got, want)
	}
}

func TestSyncBufferInOrderSingleLane(t *testing.T) {
	l := Layout{K: 1, RateBps: 8000, BlockBytes: 1000}
	b := mustSync(t, l, 0)
	total := int64(0)
	for seq := int64(0); seq < 10; seq++ {
		n, err := b.Receive(0, seq)
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if total != 10 || b.Combined() != 10 {
		t.Fatalf("combined %d (total %d), want 10", b.Combined(), total)
	}
}

func TestSyncBufferDuplicatesAndStale(t *testing.T) {
	l := Layout{K: 2, RateBps: 16000, BlockBytes: 1000}
	b := mustSync(t, l, 0)
	b.Receive(0, 0)
	b.Receive(1, 0)
	if n, _ := b.Receive(0, 0); n != 0 {
		t.Fatal("stale receive combined blocks")
	}
	if n, _ := b.Receive(1, 5); n != 0 {
		t.Fatal("gap receive combined blocks")
	}
	if n, _ := b.Receive(1, 5); n != 0 {
		t.Fatal("duplicate ahead receive combined blocks")
	}
	if b.Pending(1) != 1 {
		t.Fatalf("pending = %d, want 1", b.Pending(1))
	}
}

func TestSyncBufferErrors(t *testing.T) {
	l := Layout{K: 2, RateBps: 16000, BlockBytes: 1000}
	b := mustSync(t, l, 0)
	if _, err := b.Receive(-1, 0); err == nil {
		t.Fatal("negative sub-stream accepted")
	}
	if _, err := b.Receive(2, 0); err == nil {
		t.Fatal("out-of-range sub-stream accepted")
	}
	if _, err := NewSyncBuffer(Layout{}, 0); err == nil {
		t.Fatal("invalid layout accepted")
	}
}

func TestSyncBufferStartAlignment(t *testing.T) {
	l := Layout{K: 4, RateBps: 768e3, BlockBytes: 12000}
	b := mustSync(t, l, 5) // not a multiple of K; rounds up to 8
	if b.Combined() != 8 {
		t.Fatalf("start alignment: combined = %d, want 8", b.Combined())
	}
	for sub := 0; sub < 4; sub++ {
		if b.Next(sub) != 2 {
			t.Fatalf("lane %d next = %d, want 2", sub, b.Next(sub))
		}
	}
	// Negative start clamps to zero.
	b2 := mustSync(t, l, -100)
	if b2.Combined() != 0 {
		t.Fatalf("negative start: combined = %d", b2.Combined())
	}
}

func TestSyncBufferLatestAndDeviation(t *testing.T) {
	l := Layout{K: 3, RateBps: 24000, BlockBytes: 1000}
	b := mustSync(t, l, 0)
	// Lane 0 receives seqs 0..4, lane 1 seq 0, lane 2 nothing.
	for seq := int64(0); seq < 5; seq++ {
		b.Receive(0, seq)
	}
	b.Receive(1, 0)
	if b.Latest(0) != 4 {
		t.Fatalf("Latest(0) = %d", b.Latest(0))
	}
	if b.Latest(2) != -1 {
		t.Fatalf("Latest(2) = %d, want -1 (nothing received)", b.Latest(2))
	}
	if dev := b.MaxDeviation(); dev != 5 {
		t.Fatalf("MaxDeviation = %d, want 5", dev)
	}
}

func TestSyncBufferRandomArrivalCompleteness(t *testing.T) {
	// Property: any permutation of a complete block range combines fully.
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		k := 1 + r.Intn(6)
		l := Layout{K: k, RateBps: 8000 * float64(k), BlockBytes: 1000}
		b, err := NewSyncBuffer(l, 0)
		if err != nil {
			return false
		}
		nSeq := int64(1 + r.Intn(20))
		type blk struct {
			sub int
			seq int64
		}
		var blocks []blk
		for sub := 0; sub < k; sub++ {
			for seq := int64(0); seq < nSeq; seq++ {
				blocks = append(blocks, blk{sub, seq})
			}
		}
		r.Shuffle(len(blocks), func(i, j int) { blocks[i], blocks[j] = blocks[j], blocks[i] })
		var total int64
		for _, bl := range blocks {
			n, err := b.Receive(bl.sub, bl.seq)
			if err != nil {
				return false
			}
			total += n
		}
		return total == nSeq*int64(k) && b.Combined() == nSeq*int64(k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSyncBufferCombinedMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		l := Layout{K: 4, RateBps: 32000, BlockBytes: 1000}
		b, err := NewSyncBuffer(l, 0)
		if err != nil {
			return false
		}
		prev := b.Combined()
		for i := 0; i < 200; i++ {
			if _, err := b.Receive(r.Intn(4), int64(r.Intn(30))); err != nil {
				return false
			}
			if b.Combined() < prev {
				return false
			}
			prev = b.Combined()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
