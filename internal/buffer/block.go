// Package buffer implements Coolstreaming's data-plane structures:
// the block numbering scheme across sub-streams, the synchronization
// buffer with its combination process (Fig. 2 of the paper), the cache
// buffer feeding the media player, and the buffer map (BM) exchanged
// between partners.
package buffer

import (
	"fmt"

	"coolstream/internal/sim"
)

// Layout fixes the block numbering for a stream: the video stream of
// rate RateBps is cut into equal Blocks of BlockBytes; global block g
// belongs to sub-stream g mod K and carries per-sub-stream sequence
// number g / K (the paper's H values are these per-sub-stream
// sequences).
type Layout struct {
	// K is the number of sub-streams.
	K int
	// RateBps is the full stream bit rate R.
	RateBps float64
	// BlockBytes is the size of one block.
	BlockBytes int
}

// Validate returns an error unless the layout is usable.
func (l Layout) Validate() error {
	if l.K <= 0 {
		return fmt.Errorf("buffer: layout K = %d, want > 0", l.K)
	}
	if l.RateBps <= 0 {
		return fmt.Errorf("buffer: layout rate = %v, want > 0", l.RateBps)
	}
	if l.BlockBytes <= 0 {
		return fmt.Errorf("buffer: layout block size = %d, want > 0", l.BlockBytes)
	}
	return nil
}

// BlocksPerSecond returns the global block rate R / (8 * BlockBytes).
func (l Layout) BlocksPerSecond() float64 {
	return l.RateBps / (8 * float64(l.BlockBytes))
}

// SubBlocksPerSecond returns the per-sub-stream block rate.
func (l Layout) SubBlocksPerSecond() float64 {
	return l.BlocksPerSecond() / float64(l.K)
}

// SubRateBps returns the bit rate of one sub-stream, R/K.
func (l Layout) SubRateBps() float64 { return l.RateBps / float64(l.K) }

// SubStream returns the sub-stream index of global block g.
func (l Layout) SubStream(g int64) int { return int(((g % int64(l.K)) + int64(l.K)) % int64(l.K)) }

// Seq returns the per-sub-stream sequence number of global block g.
func (l Layout) Seq(g int64) int64 {
	if g >= 0 {
		return g / int64(l.K)
	}
	return (g - int64(l.K) + 1) / int64(l.K)
}

// Global returns the global block index of (subStream, seq).
func (l Layout) Global(subStream int, seq int64) int64 {
	return seq*int64(l.K) + int64(subStream)
}

// GlobalAt returns the (fractional) global block position of the live
// edge at virtual time t, for a source that started emitting block 0
// at time 0.
func (l Layout) GlobalAt(t sim.Time) float64 {
	return l.BlocksPerSecond() * t.Seconds()
}

// TimeOfGlobal returns the virtual time at which global block g is
// emitted by the source (inverse of GlobalAt).
func (l Layout) TimeOfGlobal(g float64) sim.Time {
	return sim.FromSeconds(g / l.BlocksPerSecond())
}

// SeqToSeconds converts a count of per-sub-stream blocks to seconds of
// stream time.
func (l Layout) SeqToSeconds(seq float64) float64 {
	return seq / l.SubBlocksPerSecond()
}

// SecondsToSeq converts seconds of stream time to per-sub-stream blocks.
func (l Layout) SecondsToSeq(s float64) float64 {
	return s * l.SubBlocksPerSecond()
}
