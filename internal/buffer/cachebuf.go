package buffer

import "fmt"

// CacheBuffer is the cache part of Fig. 2a: the window of combined
// blocks retained for playout and for serving partners. Blocks enter
// in order from the SyncBuffer and are evicted once they fall more
// than Capacity blocks behind the head.
type CacheBuffer struct {
	// Capacity is the retention window in global blocks (the paper's
	// buffer length B expressed in blocks).
	Capacity int64
	head     int64 // one past the newest block held
	tail     int64 // oldest block held
}

// NewCacheBuffer creates a cache buffer starting empty at global
// position start.
func NewCacheBuffer(capacity, start int64) (*CacheBuffer, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("buffer: cache capacity %d, want > 0", capacity)
	}
	if start < 0 {
		start = 0
	}
	return &CacheBuffer{Capacity: capacity, head: start, tail: start}, nil
}

// Append adds n combined blocks at the head and evicts from the tail
// if the window overflows (the playout push-out of §IV-A).
func (c *CacheBuffer) Append(n int64) {
	if n < 0 {
		panic("buffer: negative append")
	}
	c.head += n
	if c.head-c.tail > c.Capacity {
		c.tail = c.head - c.Capacity
	}
}

// Contains reports whether global block g is currently held.
func (c *CacheBuffer) Contains(g int64) bool { return g >= c.tail && g < c.head }

// Head returns one past the newest block held.
func (c *CacheBuffer) Head() int64 { return c.head }

// Tail returns the oldest block held.
func (c *CacheBuffer) Tail() int64 { return c.tail }

// Len returns the number of blocks held.
func (c *CacheBuffer) Len() int64 { return c.head - c.tail }
