package buffer

import (
	"testing"
	"testing/quick"

	"coolstream/internal/xrand"
)

func TestBufferMapRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		k := 1 + r.Intn(16)
		m := NewBufferMap(k)
		for i := 0; i < k; i++ {
			m.Latest[i] = r.Int63n(1 << 40)
			m.Subscribed[i] = r.Bool(0.5)
		}
		data, err := m.MarshalBinary()
		if err != nil {
			return false
		}
		var got BufferMap
		if err := got.UnmarshalBinary(data); err != nil {
			return false
		}
		if got.K() != k {
			return false
		}
		for i := 0; i < k; i++ {
			if got.Latest[i] != m.Latest[i] || got.Subscribed[i] != m.Subscribed[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBufferMapNegativeLatestRoundTrip(t *testing.T) {
	m := NewBufferMap(2)
	m.Latest[0] = -1 // "nothing received yet"
	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got BufferMap
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.Latest[0] != -1 {
		t.Fatalf("negative latest decoded as %d", got.Latest[0])
	}
}

func TestBufferMapValidate(t *testing.T) {
	if (BufferMap{}).Validate() == nil {
		t.Fatal("empty map validated")
	}
	bad := BufferMap{Latest: make([]int64, 3), Subscribed: make([]bool, 2)}
	if bad.Validate() == nil {
		t.Fatal("mismatched map validated")
	}
	if _, err := bad.MarshalBinary(); err == nil {
		t.Fatal("mismatched map marshalled")
	}
}

func TestBufferMapUnmarshalErrors(t *testing.T) {
	var m BufferMap
	if err := m.UnmarshalBinary(nil); err == nil {
		t.Fatal("nil data accepted")
	}
	if err := m.UnmarshalBinary([]byte{0, 0}); err == nil {
		t.Fatal("K=0 accepted")
	}
	good, _ := NewBufferMap(3).MarshalBinary()
	if err := m.UnmarshalBinary(good[:len(good)-1]); err == nil {
		t.Fatal("truncated data accepted")
	}
}

func TestBufferMapMaxLatest(t *testing.T) {
	m := NewBufferMap(3)
	m.Latest = []int64{5, 42, 7}
	if m.MaxLatest() != 42 {
		t.Fatalf("MaxLatest = %d", m.MaxLatest())
	}
	if (BufferMap{}).MaxLatest() != 0 {
		t.Fatal("empty MaxLatest not 0")
	}
}

func TestBufferMapClone(t *testing.T) {
	m := NewBufferMap(2)
	m.Latest[0] = 9
	m.Subscribed[1] = true
	c := m.Clone()
	c.Latest[0] = 1
	c.Subscribed[1] = false
	if m.Latest[0] != 9 || !m.Subscribed[1] {
		t.Fatal("Clone shares storage with original")
	}
}
