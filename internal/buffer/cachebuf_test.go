package buffer

import "testing"

func TestCacheBufferAppendAndEvict(t *testing.T) {
	c, err := NewCacheBuffer(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.Append(5)
	if c.Len() != 5 || c.Tail() != 0 || c.Head() != 5 {
		t.Fatalf("after append 5: len=%d tail=%d head=%d", c.Len(), c.Tail(), c.Head())
	}
	c.Append(8) // total 13 > capacity 10 → evict 3
	if c.Len() != 10 || c.Tail() != 3 || c.Head() != 13 {
		t.Fatalf("after overflow: len=%d tail=%d head=%d", c.Len(), c.Tail(), c.Head())
	}
}

func TestCacheBufferContains(t *testing.T) {
	c, _ := NewCacheBuffer(4, 100)
	c.Append(4)
	for g := int64(100); g < 104; g++ {
		if !c.Contains(g) {
			t.Fatalf("missing block %d", g)
		}
	}
	if c.Contains(99) || c.Contains(104) {
		t.Fatal("contains out-of-window block")
	}
	c.Append(1)
	if c.Contains(100) {
		t.Fatal("evicted block still contained")
	}
}

func TestCacheBufferErrors(t *testing.T) {
	if _, err := NewCacheBuffer(0, 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
	c, _ := NewCacheBuffer(5, -10)
	if c.Head() != 0 {
		t.Fatal("negative start not clamped")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative append did not panic")
		}
	}()
	c.Append(-1)
}
