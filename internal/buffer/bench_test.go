package buffer

import "testing"

func BenchmarkSyncBufferReceiveInOrder(b *testing.B) {
	l := Layout{K: 4, RateBps: 768e3, BlockBytes: 12000}
	sb, err := NewSyncBuffer(l, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := int64(i)
		if _, err := sb.Receive(l.SubStream(g), l.Seq(g)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBufferMapMarshal(b *testing.B) {
	bm := NewBufferMap(4)
	for i := range bm.Latest {
		bm.Latest[i] = int64(1000 + i)
		bm.Subscribed[i] = i%2 == 0
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := bm.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		var out BufferMap
		if err := out.UnmarshalBinary(data); err != nil {
			b.Fatal(err)
		}
	}
}
