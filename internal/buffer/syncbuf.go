package buffer

import "fmt"

// SyncBuffer is the synchronization buffer of Fig. 2a: per-sub-stream
// queues of received blocks that are combined into a single ordered
// stream once every sub-stream has delivered the block with the next
// expected sequence number. The combination process of Fig. 2b stops
// at the first sub-stream whose next block has not arrived.
//
// The buffer tracks, per sub-stream, the set of received sequence
// numbers above the combined prefix. Blocks may arrive out of order
// within a sub-stream (retransmissions after a parent switch), so each
// lane keeps a small ahead-of-order set.
type SyncBuffer struct {
	layout Layout
	// next[i] is the sequence number the combiner expects next from
	// sub-stream i.
	next []int64
	// ahead[i] holds sequence numbers received out of order, > next[i].
	ahead []map[int64]struct{}
	// combined is the global index of the next block to be handed to
	// the cache buffer (all blocks < combined are combined).
	combined int64
}

// NewSyncBuffer creates a synchronization buffer whose combination
// starts at global block start (typically the T_p-shifted join point).
// start is rounded up to a multiple of K so each lane starts at a
// whole sequence number.
func NewSyncBuffer(layout Layout, start int64) (*SyncBuffer, error) {
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	k := int64(layout.K)
	if start < 0 {
		start = 0
	}
	if rem := start % k; rem != 0 {
		start += k - rem
	}
	b := &SyncBuffer{
		layout: layout,
		next:   make([]int64, layout.K),
		ahead:  make([]map[int64]struct{}, layout.K),
	}
	seq := start / k
	for i := range b.next {
		b.next[i] = seq
		b.ahead[i] = make(map[int64]struct{})
	}
	b.combined = start
	return b, nil
}

// Receive records the arrival of block seq on sub-stream sub, then
// runs the combination process. It returns the number of global blocks
// newly combined (possibly 0). Duplicate and stale arrivals are
// ignored. It returns an error for an out-of-range sub-stream.
func (b *SyncBuffer) Receive(sub int, seq int64) (int64, error) {
	if sub < 0 || sub >= b.layout.K {
		return 0, fmt.Errorf("buffer: sub-stream %d out of range [0,%d)", sub, b.layout.K)
	}
	if seq < b.next[sub] {
		return 0, nil // stale or duplicate
	}
	if _, dup := b.ahead[sub][seq]; dup {
		return 0, nil
	}
	b.ahead[sub][seq] = struct{}{}
	return b.combine(), nil
}

// combine advances the combined prefix: the combiner walks global
// block order, consuming next[sub] from each lane in turn, stopping at
// the first lane whose expected block is missing (Fig. 2b).
func (b *SyncBuffer) combine() int64 {
	var n int64
	for {
		sub := b.layout.SubStream(b.combined)
		seq := b.layout.Seq(b.combined)
		if seq != b.next[sub] {
			// Internal invariant: the combined cursor and the lane
			// cursor always agree.
			panic(fmt.Sprintf("buffer: combine cursor desync: sub %d seq %d next %d", sub, seq, b.next[sub]))
		}
		if _, ok := b.ahead[sub][seq]; !ok {
			return n
		}
		delete(b.ahead[sub], seq)
		b.next[sub]++
		b.combined++
		n++
	}
}

// Combined returns the global index one past the last combined block.
func (b *SyncBuffer) Combined() int64 { return b.combined }

// Next returns the sequence number expected next on sub-stream sub.
func (b *SyncBuffer) Next(sub int) int64 { return b.next[sub] }

// Latest returns the highest received sequence number on sub-stream
// sub (the H value advertised in buffer maps), or next-1 when nothing
// is ahead of the combined prefix.
func (b *SyncBuffer) Latest(sub int) int64 {
	latest := b.next[sub] - 1
	for seq := range b.ahead[sub] {
		if seq > latest {
			latest = seq
		}
	}
	return latest
}

// Pending returns how many out-of-order blocks sub-stream sub holds.
func (b *SyncBuffer) Pending(sub int) int { return len(b.ahead[sub]) }

// MaxDeviation returns the largest difference between the latest
// sequence numbers of any two sub-streams — the quantity bounded by
// T_s in the paper's Inequality (1).
func (b *SyncBuffer) MaxDeviation() int64 {
	if b.layout.K == 1 {
		return 0
	}
	lo, hi := b.Latest(0), b.Latest(0)
	for i := 1; i < b.layout.K; i++ {
		l := b.Latest(i)
		if l < lo {
			lo = l
		}
		if l > hi {
			hi = l
		}
	}
	return hi - lo
}
