package microsim

import (
	"fmt"

	"coolstream/internal/sim"
)

// Pull mode implements the receiver-driven scheduler of the original
// DONet/Coolstreaming v1 (reference [3] of the paper): instead of
// subscribing to a sub-stream and having the parent push every block,
// the child inspects its parents' availability every scheduling round
// and *requests* individual missing blocks, which the parent then
// serves through the same paced uplink.
//
// The system measured in the paper moved to push sub-streams precisely
// because pull adds a scheduling-round of latency per block and
// per-request control traffic; experiment E21 quantifies that gap on
// identical topologies.

// PullConfig parameterises a pull-mode receiver.
type PullConfig struct {
	// SchedPeriod is the scheduling-round length (DONet used ~1 s).
	SchedPeriod sim.Time
	// Window is how many blocks ahead of the contiguous prefix the
	// scheduler requests per lane and round.
	Window int64
	// ReqDelay is the one-way control latency of a request.
	ReqDelay sim.Time
}

// Validate reports configuration errors.
func (c PullConfig) Validate() error {
	if c.SchedPeriod <= 0 {
		return fmt.Errorf("microsim: pull scheduling period %v", c.SchedPeriod)
	}
	if c.Window <= 0 {
		return fmt.Errorf("microsim: pull window %d", c.Window)
	}
	if c.ReqDelay < 0 {
		return fmt.Errorf("microsim: negative request delay")
	}
	return nil
}

// AddPullNode registers a node that fetches blocks with the pull
// scheduler instead of sub-stream push. Parents serve requested blocks
// through the same transmission queue as push children.
func (s *System) AddPullNode(id int, uploadBps float64, parents []int, startSeq, readyThreshold int64, pc PullConfig) (*Node, error) {
	if err := pc.Validate(); err != nil {
		return nil, err
	}
	if len(parents) != s.Layout.K {
		return nil, fmt.Errorf("microsim: %d parents for K=%d", len(parents), s.Layout.K)
	}
	for j, p := range parents {
		if p == SourceID {
			continue
		}
		if _, ok := s.nodes[p]; !ok {
			return nil, fmt.Errorf("microsim: pull node %d: unknown parent %d on sub-stream %d", id, p, j)
		}
	}
	// Create the node without any push registration: all delivery is
	// request-driven.
	n, err := s.createNode(id, uploadBps, startSeq, readyThreshold)
	if err != nil {
		return nil, err
	}
	realParents := append([]int(nil), parents...)
	requested := make([]int64, s.Layout.K) // highest seq requested per lane
	for j := range requested {
		requested[j] = startSeq - 1
	}
	var round func()
	round = func() {
		for j := 0; j < s.Layout.K; j++ {
			p := realParents[j]
			var avail int64
			if p == SourceID {
				avail = s.sourceLatest[j]
			} else {
				avail = s.nodes[p].syncBuf.Latest(j)
			}
			// Request the missing span up to the window limit.
			base := n.syncBuf.Next(j) // contiguous progress on this lane
			limit := base + pc.Window
			if limit > avail+1 {
				limit = avail + 1
			}
			for seq := requested[j] + 1; seq < limit; seq++ {
				seq := seq
				j := j
				// The request travels ReqDelay, then the parent queues
				// the block on its uplink.
				s.Engine.After(pc.ReqDelay, func() {
					if p == SourceID {
						s.transmit(nil, n, j, seq)
					} else {
						s.transmit(s.nodes[p], n, j, seq)
					}
				})
			}
			if limit-1 > requested[j] {
				requested[j] = limit - 1
			}
		}
		s.Engine.After(pc.SchedPeriod, round)
	}
	s.Engine.After(pc.SchedPeriod, round)
	return n, nil
}

// pullParent marks a lane fed by the pull scheduler rather than a push
// subscription.
const pullParent = -2
