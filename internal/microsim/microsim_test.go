package microsim

import (
	"math"
	"testing"

	"coolstream/internal/analysis"
	"coolstream/internal/buffer"
	"coolstream/internal/sim"
)

var layout = buffer.Layout{K: 4, RateBps: 768e3, BlockBytes: 12000}

func newSystem(t *testing.T) (*System, *sim.Engine) {
	t.Helper()
	e := sim.NewEngine(sim.Second)
	s, err := NewSystem(layout, e, 240)
	if err != nil {
		t.Fatal(err)
	}
	return s, e
}

func sourceParents() []int { return []int{SourceID, SourceID, SourceID, SourceID} }

func TestNewSystemValidation(t *testing.T) {
	e := sim.NewEngine(sim.Second)
	if _, err := NewSystem(buffer.Layout{}, e, 240); err == nil {
		t.Fatal("invalid layout accepted")
	}
	if _, err := NewSystem(layout, nil, 240); err == nil {
		t.Fatal("nil engine accepted")
	}
	if _, err := NewSystem(layout, e, 0); err == nil {
		t.Fatal("zero buffer accepted")
	}
}

func TestAddNodeValidation(t *testing.T) {
	s, e := newSystem(t)
	e.Run(10 * sim.Second)
	if _, err := s.AddNode(SourceID, 1e6, sourceParents(), 0, 20); err == nil {
		t.Fatal("source id accepted")
	}
	if _, err := s.AddNode(1, 1e6, []int{SourceID}, 0, 20); err == nil {
		t.Fatal("wrong parent count accepted")
	}
	if _, err := s.AddNode(1, 1e6, []int{7, 7, 7, 7}, 0, 20); err == nil {
		t.Fatal("unknown parent accepted")
	}
	if _, err := s.AddNode(1, 1e6, sourceParents(), 0, 20); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddNode(1, 1e6, sourceParents(), 0, 20); err == nil {
		t.Fatal("duplicate id accepted")
	}
}

func TestSourceChildReceivesStream(t *testing.T) {
	s, e := newSystem(t)
	e.Run(30 * sim.Second) // live edge at seq 60 per sub-stream
	n, err := s.AddNode(1, 10*layout.RateBps, sourceParents(), 20, 20)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(60 * sim.Second)
	// The backlog (seq 20..60) arrives instantly, so the node is ready
	// immediately and stays perfectly continuous.
	if n.ReadyAt() < 0 || n.ReadyAt() > 31*sim.Second {
		t.Fatalf("ready at %v", n.ReadyAt())
	}
	if ci := n.Continuity(); ci != 1 {
		t.Fatalf("continuity %v under the source", ci)
	}
	// Latest tracks the live edge: at t=60s, seq 120.
	if got := n.Latest(0); got < 118 || got > 120 {
		t.Fatalf("latest %d, want ~120", got)
	}
	// The combination process produced a contiguous prefix.
	if n.Combined() < 118*4 {
		t.Fatalf("combined prefix %d too short", n.Combined())
	}
	if n.BMExchanges() == 0 {
		t.Fatal("no codec-verified BM exchanges")
	}
}

func TestCatchUpMatchesEq3AtBlockGranularity(t *testing.T) {
	// E15: the block-level catch-up through a rate-limited parent must
	// match Eq. (3) and therefore the fluid engine.
	s, e := newSystem(t)
	e.Run(60 * sim.Second) // live seq 120
	relay, err := s.AddNode(1, 2*layout.RateBps, sourceParents(), 60, 20)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(90 * sim.Second) // relay caught up to live (seq 180)
	if relay.Latest(0) < 178 {
		t.Fatalf("relay not caught up: %d", relay.Latest(0))
	}
	// Child joins 40 blocks behind, served only by the relay whose
	// 2R upload yields r_seq = 2R/(8·12000) = 16 blocks/s shared over
	// whatever is in flight; with a single child all of it goes here.
	start := relay.Latest(0) - 40
	child, err := s.AddNode(2, layout.RateBps, []int{1, 1, 1, 1}, start, 20)
	if err != nil {
		t.Fatal(err)
	}
	joinAt := e.Now()
	// Eq. (3): per-sub-stream deficit 40 blocks across 4 lanes = 160
	// global blocks; the relay transmits 16 blocks/s while 8/s are due:
	// catch-up ≈ 160/(16-8) = 20 s.
	model, err := analysis.NewModel(layout)
	if err != nil {
		t.Fatal(err)
	}
	// In Eq. (3) terms: one sub-stream transmission gets 2R/4 = R/2,
	// deficit 40 blocks → 40·96000/(384000-192000) = 20 s.
	want, err := model.CatchUpTime(40, 2*layout.RateBps/4)
	if err != nil {
		t.Fatal(err)
	}
	// Find when the child reaches the live edge.
	caughtAt := sim.Time(-1)
	for step := 0; step < 300; step++ {
		e.Run(e.Now() + sim.Second)
		live := int64(layout.GlobalAt(e.Now())) / int64(layout.K)
		if live-child.Latest(0) <= 1 {
			caughtAt = e.Now()
			break
		}
	}
	if caughtAt < 0 {
		t.Fatal("child never caught up")
	}
	got := (caughtAt - joinAt).Seconds()
	if math.Abs(got-want) > 3 {
		t.Fatalf("block-level catch-up %.1fs vs Eq. (3) %.1fs", got, want)
	}
	if child.ReadyAt() < 0 {
		t.Fatal("child never ready")
	}
}

func TestOverloadedParentDegradesPerEq5(t *testing.T) {
	// A parent with upload exactly R serving two full-stream children:
	// each transmission gets R/2 overall — children fall behind at
	// half the stream rate (Eq. (5) with D→2D transmissions).
	s, e := newSystem(t)
	e.Run(60 * sim.Second)
	relay, err := s.AddNode(1, layout.RateBps, sourceParents(), 100, 20)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(75 * sim.Second)
	start := relay.Latest(0) - 2
	a, err := s.AddNode(2, layout.RateBps/10, []int{1, 1, 1, 1}, start, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.AddNode(3, layout.RateBps/10, []int{1, 1, 1, 1}, start, 10)
	if err != nil {
		t.Fatal(err)
	}
	t0 := e.Now()
	e.Run(t0 + 60*sim.Second)
	// Per child: receives ~R/2 → 1 block/s per sub-stream vs 2 due →
	// lag grows ~1 block/s per sub-stream over 60 s ⇒ ~55-60 blocks
	// behind the relay; once the 10-block startup slack drains the
	// deadline misses accumulate and continuity drops well below 1.
	for _, n := range []*Node{a, b} {
		lag := relay.Latest(0) - n.Latest(0)
		if lag < 40 || lag > 70 {
			t.Fatalf("node %d lag %d, want ~58 (Eq. 5 degradation)", n.ID, lag)
		}
		if ci := n.Continuity(); ci > 0.8 {
			t.Fatalf("node %d continuity %v despite starvation", n.ID, ci)
		}
	}
}

func TestCombinationStallsOnSlowestLane(t *testing.T) {
	// Lanes served by parents of different speed: the combined prefix
	// follows the slowest lane (Fig. 2b at system scale).
	s, e := newSystem(t)
	e.Run(60 * sim.Second)
	fast, err := s.AddNode(1, 8*layout.RateBps, sourceParents(), 100, 20)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := s.AddNode(2, layout.RateBps/8, sourceParents(), 100, 20)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(80 * sim.Second)
	start := fast.Latest(0) - 30
	// Child: lane 0 from the slow relay, lanes 1-3 from the fast one.
	child, err := s.AddNode(3, layout.RateBps, []int{2, 1, 1, 1}, start, 10)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(100 * sim.Second)
	minLatest := child.Latest(0)
	for j := 1; j < layout.K; j++ {
		if l := child.Latest(j); l < minLatest {
			minLatest = l
		}
	}
	if child.Latest(0) >= child.Latest(1) {
		t.Fatalf("slow lane not behind: %d vs %d", child.Latest(0), child.Latest(1))
	}
	// Combined prefix cannot run ahead of the slowest lane.
	maxCombined := (minLatest + 1) * int64(layout.K)
	if child.Combined() > maxCombined {
		t.Fatalf("combined %d beyond slowest lane bound %d", child.Combined(), maxCombined)
	}
	_ = slow
}

func TestMicroMatchesFluidTrajectory(t *testing.T) {
	// E15 head-to-head: the same two-node catch-up through the
	// block-level queue and through the pure fluid integrator.
	s, e := newSystem(t)
	e.Run(60 * sim.Second)
	relay, err := s.AddNode(1, 3*layout.RateBps, sourceParents(), 60, 20)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(90 * sim.Second)
	deficit := int64(24)
	start := relay.Latest(0) - deficit
	child, err := s.AddNode(2, layout.RateBps, []int{1, 1, 1, 1}, start, 1e9 /* never "ready": observe raw transfer */)
	if err != nil {
		t.Fatal(err)
	}
	joinAt := e.Now()
	fluidT, caught, err := analysis.FluidTransfer(layout, float64(deficit), 3*layout.RateBps/4, 1, 1e12, 0.005, 300)
	if err != nil || !caught {
		t.Fatalf("fluid: %v", err)
	}
	caughtAt := sim.Time(-1)
	for step := 0; step < 300; step++ {
		e.Run(e.Now() + sim.Second)
		live := int64(layout.GlobalAt(e.Now())) / int64(layout.K)
		if live-child.Latest(0) <= 1 {
			caughtAt = e.Now()
			break
		}
	}
	if caughtAt < 0 {
		t.Fatal("micro never caught up")
	}
	microT := (caughtAt - joinAt).Seconds()
	if math.Abs(microT-fluidT) > 3 {
		t.Fatalf("micro %.1fs vs fluid %.1fs", microT, fluidT)
	}
}
