// Package microsim is a block-granular Coolstreaming data plane for
// small populations: every block is an individual scheduled delivery
// through a per-parent transmission queue, received into the real
// synchronization/cache buffers of internal/buffer, with buffer maps
// exchanged through the real wire codec of internal/protocol.
//
// Its purpose is cross-validation (experiment E15): the large-scale
// World in internal/peer abstracts transfers as fluid trajectories;
// microsim replays small scenarios at full block fidelity so the two
// can be compared — media-ready times, catch-up completion, and
// continuity must agree within block-quantisation error. It also
// serves as the reference implementation of the §III-C buffering
// pipeline, since the fluid engine cannot exercise SyncBuffer's
// combination process.
package microsim

import (
	"fmt"
	"sort"

	"coolstream/internal/buffer"
	"coolstream/internal/protocol"
	"coolstream/internal/sim"
)

// Node is one block-level peer.
type Node struct {
	ID int
	// UploadBps bounds the node's outgoing transmission rate.
	UploadBps float64

	syncBuf  *buffer.SyncBuffer
	cacheBuf *buffer.CacheBuffer
	// parents[j] is the node serving sub-stream j (-1 = none).
	parents []int
	// children[j] lists subscribers of sub-stream j.
	children [][]int

	// txBusyUntil serialises the node's outgoing transmissions: the
	// access link sends one block at a time at UploadBps.
	txBusyUntil sim.Time

	// startSeq is the per-sub-stream sequence the node joined at.
	startSeq int64
	// readyAt is when the startup buffer filled (-1 before that).
	readyAt sim.Time
	// readyThreshold is the per-sub-stream block count to buffer
	// before playback.
	readyThreshold int64

	// delivered[j] is the next sequence to transmit per (child,
	// sub-stream); key is child ID.
	nextSend []map[int]int64

	// blocksOnTime / blocksTotal account the continuity index against
	// per-block deadlines once playback started.
	blocksOnTime int64
	blocksTotal  int64

	// bmLog counts buffer-map exchanges round-tripped through the wire
	// codec (a fidelity check that the codec path is really used).
	bmExchanges int
}

// ReadyAt returns the media-ready time, or -1.
func (n *Node) ReadyAt() sim.Time { return n.readyAt }

// Continuity returns on-time blocks over total due blocks (1 when
// nothing was due yet).
func (n *Node) Continuity() float64 {
	if n.blocksTotal == 0 {
		return 1
	}
	return float64(n.blocksOnTime) / float64(n.blocksTotal)
}

// BMExchanges returns how many codec-verified BM exchanges this node
// performed.
func (n *Node) BMExchanges() int { return n.bmExchanges }

// Latest returns the latest received sequence on sub-stream j.
func (n *Node) Latest(j int) int64 { return n.syncBuf.Latest(j) }

// Combined returns the combined prefix (global blocks).
func (n *Node) Combined() int64 { return n.syncBuf.Combined() }

// System is the block-level simulation: a source emitting blocks at
// the stream rate and a set of nodes with static sub-stream
// subscriptions.
type System struct {
	Layout buffer.Layout
	Engine *sim.Engine
	// BufferBlocks is the cache window per node.
	BufferBlocks int64

	nodes map[int]*Node
	ids   []int

	// source state: the source holds every emitted block.
	sourceLatest []int64

	// BMPeriod drives periodic codec-round-tripped BM exchanges.
	BMPeriod sim.Time
}

// SourceID is the implicit source node's ID.
const SourceID = -1

// NewSystem creates an empty block-level system on the engine. The
// source begins emitting block 0 of every sub-stream at time zero.
func NewSystem(layout buffer.Layout, engine *sim.Engine, bufferBlocks int64) (*System, error) {
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	if engine == nil {
		return nil, fmt.Errorf("microsim: nil engine")
	}
	if bufferBlocks <= 0 {
		return nil, fmt.Errorf("microsim: buffer %d blocks", bufferBlocks)
	}
	s := &System{
		Layout:       layout,
		Engine:       engine,
		BufferBlocks: bufferBlocks,
		nodes:        make(map[int]*Node),
		sourceLatest: make([]int64, layout.K),
		BMPeriod:     5 * sim.Second,
	}
	for j := range s.sourceLatest {
		s.sourceLatest[j] = -1
	}
	s.scheduleEmission()
	return s, nil
}

// scheduleEmission emits global blocks at the stream rate forever
// (one engine event per block; microsim is for small scenarios).
func (s *System) scheduleEmission() {
	var emit func(g int64)
	emit = func(g int64) {
		j := s.Layout.SubStream(g)
		seq := s.Layout.Seq(g)
		s.sourceLatest[j] = seq
		// Push to direct children of the source.
		for _, id := range s.ids {
			n := s.nodes[id]
			if n.parents[j] == SourceID {
				s.transmit(nil, n, j, seq)
			}
		}
		s.Engine.Schedule(s.Layout.TimeOfGlobal(float64(g+1)), func() { emit(g + 1) })
	}
	s.Engine.Schedule(0, func() { emit(0) })
}

// createNode builds and registers a node with no data feed wired up;
// every lane starts marked pullParent (no push source).
func (s *System) createNode(id int, uploadBps float64, startSeq, readyThreshold int64) (*Node, error) {
	if _, dup := s.nodes[id]; dup || id == SourceID {
		return nil, fmt.Errorf("microsim: bad node id %d", id)
	}
	sb, err := buffer.NewSyncBuffer(s.Layout, startSeq*int64(s.Layout.K))
	if err != nil {
		return nil, err
	}
	cb, err := buffer.NewCacheBuffer(s.BufferBlocks*int64(s.Layout.K), startSeq*int64(s.Layout.K))
	if err != nil {
		return nil, err
	}
	n := &Node{
		ID:             id,
		UploadBps:      uploadBps,
		syncBuf:        sb,
		cacheBuf:       cb,
		parents:        make([]int, s.Layout.K),
		children:       make([][]int, s.Layout.K),
		startSeq:       startSeq,
		readyAt:        -1,
		readyThreshold: readyThreshold,
		nextSend:       make([]map[int]int64, s.Layout.K),
	}
	for j := range n.parents {
		n.parents[j] = pullParent
	}
	for j := range n.nextSend {
		n.nextSend[j] = make(map[int]int64)
	}
	s.nodes[id] = n
	s.ids = append(s.ids, id)
	sort.Ints(s.ids)
	s.scheduleBMExchange(n)
	return n, nil
}

// AddNode registers a push-mode node. parents[j] names the serving
// node per sub-stream (SourceID for the source). startSeq is the
// per-sub-stream join position; readyThreshold the startup buffer in
// blocks.
func (s *System) AddNode(id int, uploadBps float64, parents []int, startSeq, readyThreshold int64) (*Node, error) {
	if len(parents) != s.Layout.K {
		return nil, fmt.Errorf("microsim: %d parents for K=%d", len(parents), s.Layout.K)
	}
	for j, p := range parents {
		if p == SourceID {
			continue
		}
		if _, ok := s.nodes[p]; !ok {
			return nil, fmt.Errorf("microsim: node %d: unknown parent %d on sub-stream %d", id, p, j)
		}
	}
	n, err := s.createNode(id, uploadBps, startSeq, readyThreshold)
	if err != nil {
		return nil, err
	}
	copy(n.parents, parents)
	// Register with parents and backfill: the parent pushes everything
	// it already holds from startSeq on (the §IV-B "push out all
	// blocks of a sub-stream in need").
	for j, p := range parents {
		if p == SourceID {
			for seq := startSeq; seq <= s.sourceLatest[j]; seq++ {
				s.transmit(nil, n, j, seq)
			}
			continue
		}
		parent := s.nodes[p]
		parent.children[j] = append(parent.children[j], id)
		parent.nextSend[j][id] = startSeq
		s.drainBacklog(parent, n, j)
	}
	return n, nil
}

// scheduleBMExchange round-trips the node's buffer map through the
// wire codec periodically, verifying the exchange path end to end.
func (s *System) scheduleBMExchange(n *Node) {
	var tick func()
	tick = func() {
		bm := buffer.NewBufferMap(s.Layout.K)
		for j := 0; j < s.Layout.K; j++ {
			bm.Latest[j] = n.syncBuf.Latest(j)
			bm.Subscribed[j] = n.parents[j] != SourceID && n.parents[j] >= 0
		}
		msg := protocol.Message{Type: protocol.TypeBMExchange, From: int32(n.ID), To: 0, BM: bm}
		data, err := protocol.Marshal(msg)
		if err != nil {
			panic(fmt.Sprintf("microsim: bm marshal: %v", err))
		}
		decoded, err := protocol.Unmarshal(data)
		if err != nil {
			panic(fmt.Sprintf("microsim: bm unmarshal: %v", err))
		}
		for j := range decoded.BM.Latest {
			if decoded.BM.Latest[j] != bm.Latest[j] {
				panic("microsim: bm corrupted in flight")
			}
		}
		n.bmExchanges++
		s.Engine.After(s.BMPeriod, tick)
	}
	s.Engine.After(s.BMPeriod, tick)
}

// transmit queues the delivery of block (j, seq) from parent to child.
// A nil parent means the source, whose capacity is unbounded.
func (s *System) transmit(parent *Node, child *Node, j int, seq int64) {
	now := s.Engine.Now()
	var arrive sim.Time
	if parent == nil {
		arrive = now // source delivers at emission
	} else {
		txTime := sim.FromSeconds(8 * float64(s.Layout.BlockBytes) / parent.UploadBps)
		start := now
		if parent.txBusyUntil > start {
			start = parent.txBusyUntil
		}
		parent.txBusyUntil = start + txTime
		arrive = parent.txBusyUntil
	}
	s.Engine.Schedule(arrive, func() { s.receive(child, j, seq) })
}

// receive lands a block in the child's buffers, advances the
// combination process, detects media-ready, accounts deadlines, and
// forwards to the child's own children.
func (s *System) receive(n *Node, j int, seq int64) {
	combined, err := n.syncBuf.Receive(j, seq)
	if err != nil {
		panic(fmt.Sprintf("microsim: receive: %v", err))
	}
	if combined > 0 {
		n.cacheBuf.Append(combined)
	}
	now := s.Engine.Now()
	// Media-ready: every lane has buffered readyThreshold blocks past
	// the start position (combined prefix covers it).
	if n.readyAt < 0 {
		if n.syncBuf.Combined() >= (n.startSeq+n.readyThreshold)*int64(s.Layout.K) {
			n.readyAt = now
		}
	}
	// Deadline accounting: block (j, seq) is due at
	// readyAt + (seq - start)/subBlockRate.
	if n.readyAt >= 0 {
		due := n.readyAt + sim.FromSeconds(s.Layout.SeqToSeconds(float64(seq-n.startSeq)))
		n.blocksTotal++
		if now <= due {
			n.blocksOnTime++
		}
	}
	// Forward, in order, to children subscribed to this sub-stream.
	for _, c := range n.children[j] {
		s.drainBacklog(n, s.nodes[c], j)
	}
}

// drainBacklog sends, in order, every block the parent holds that the
// child is still missing on sub-stream j.
func (s *System) drainBacklog(parent, child *Node, j int) {
	for {
		next := parent.nextSend[j][child.ID]
		if next > parent.syncBuf.Latest(j) {
			return
		}
		parent.nextSend[j][child.ID] = next + 1
		s.transmit(parent, child, j, next)
	}
}

// Node returns a node by ID.
func (s *System) Node(id int) *Node { return s.nodes[id] }
