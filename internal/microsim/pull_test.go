package microsim

import (
	"testing"

	"coolstream/internal/sim"
)

func TestPullConfigValidate(t *testing.T) {
	good := PullConfig{SchedPeriod: sim.Second, Window: 20, ReqDelay: 50 * sim.Millisecond}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []PullConfig{
		{SchedPeriod: 0, Window: 20},
		{SchedPeriod: sim.Second, Window: 0},
		{SchedPeriod: sim.Second, Window: 5, ReqDelay: -1},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

func TestPullNodeValidation(t *testing.T) {
	s, e := newSystem(t)
	e.Run(10 * sim.Second)
	pc := PullConfig{SchedPeriod: sim.Second, Window: 20, ReqDelay: 50 * sim.Millisecond}
	if _, err := s.AddPullNode(1, 1e6, []int{SourceID}, 0, 10, pc); err == nil {
		t.Fatal("wrong parent count accepted")
	}
	if _, err := s.AddPullNode(1, 1e6, []int{9, 9, 9, 9}, 0, 10, pc); err == nil {
		t.Fatal("unknown parent accepted")
	}
	if _, err := s.AddPullNode(1, 1e6, sourceParents(), 0, 10, PullConfig{}); err == nil {
		t.Fatal("invalid pull config accepted")
	}
}

func TestPullNodeStreamsFromSource(t *testing.T) {
	s, e := newSystem(t)
	e.Run(30 * sim.Second)
	pc := PullConfig{SchedPeriod: sim.Second, Window: 30, ReqDelay: 50 * sim.Millisecond}
	n, err := s.AddPullNode(1, 10*layout.RateBps, sourceParents(), 40, 10, pc)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(80 * sim.Second)
	if n.ReadyAt() < 0 {
		t.Fatal("pull node never ready")
	}
	// It keeps pace with the live edge within roughly one scheduling
	// window.
	live := int64(layout.GlobalAt(e.Now())) / int64(layout.K)
	if lag := live - n.Latest(0); lag > 2*2+pc.Window {
		t.Fatalf("pull node lag %d blocks", lag)
	}
	// Combination progressed (pull delivers across all lanes).
	if n.Combined() < (n.startSeq+20)*int64(layout.K) {
		t.Fatalf("combined %d too short", n.Combined())
	}
}

func TestPullSlowerThanPushSameTopology(t *testing.T) {
	// E21's essence: same relay, same capacity — the push child reaches
	// ready no later than the pull child (pull pays scheduling-round
	// discretisation plus request latency).
	s, e := newSystem(t)
	e.Run(30 * sim.Second)
	relay, err := s.AddNode(1, 4*layout.RateBps, sourceParents(), 30, 10)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(60 * sim.Second)
	start := relay.Latest(0) - 20

	push, err := s.AddNode(2, layout.RateBps, []int{1, 1, 1, 1}, start, 15)
	if err != nil {
		t.Fatal(err)
	}
	pull, err := s.AddPullNode(3, layout.RateBps, []int{1, 1, 1, 1}, start, 15,
		PullConfig{SchedPeriod: sim.Second, Window: 40, ReqDelay: 100 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	joinAt := e.Now()
	e.Run(e.Now() + 2*sim.Minute)
	if push.ReadyAt() < 0 || pull.ReadyAt() < 0 {
		t.Fatalf("ready: push=%v pull=%v", push.ReadyAt(), pull.ReadyAt())
	}
	pushDelay := (push.ReadyAt() - joinAt).Seconds()
	pullDelay := (pull.ReadyAt() - joinAt).Seconds()
	if pullDelay < pushDelay {
		t.Fatalf("pull (%.2fs) beat push (%.2fs)?", pullDelay, pushDelay)
	}
	// The gap should be visible: at least a fraction of the scheduling
	// period.
	if pullDelay-pushDelay < 0.2 {
		t.Fatalf("no pull penalty visible: push %.2fs pull %.2fs", pushDelay, pullDelay)
	}
}

func TestPullNodeNeverReceivesUnrequestedPushes(t *testing.T) {
	s, e := newSystem(t)
	e.Run(20 * sim.Second)
	pc := PullConfig{SchedPeriod: 500 * sim.Millisecond, Window: 10, ReqDelay: 20 * sim.Millisecond}
	n, err := s.AddPullNode(1, layout.RateBps, sourceParents(), 20, 5, pc)
	if err != nil {
		t.Fatal(err)
	}
	// Before the first scheduling round fires, nothing has arrived.
	if n.Latest(0) >= 20 {
		t.Fatal("pull node received data before its first request round")
	}
	e.Run(e.Now() + 10*sim.Second)
	if n.Latest(0) < 20 {
		t.Fatal("pull node received nothing after rounds")
	}
}
