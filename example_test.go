package coolstream_test

import (
	"fmt"

	"coolstream"
)

// Example runs a miniature broadcast and prints headline measurements.
// Runs are deterministic for a given seed at any GOMAXPROCS, so the
// output below doubles as a regression check on the whole pipeline.
func Example() {
	cfg := coolstream.SteadyConfig(0.2, 4*coolstream.Minute, 7)
	cfg.Params.ReportPeriod = 30 * coolstream.Second
	res, err := coolstream.Run(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("sessions joined: %d\n", res.JoinedSessions)
	fmt.Printf("sessions ready: %d\n", res.ReadySessions)
	fmt.Printf("continuity above 0.9: %v\n", res.Analysis.MeanContinuity() > 0.9)
	sub, ready, _ := res.Analysis.StartupDelays()
	fmt.Printf("subscription faster than ready: %v\n", sub.Median() < ready.Median())
	// Output:
	// sessions joined: 41
	// sessions ready: 34
	// continuity above 0.9: true
	// subscription faster than ready: true
}
