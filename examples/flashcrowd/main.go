// Flashcrowd reproduces the Fig. 7 / Fig. 9b regime: a warm overlay
// hit by an arrival burst. It measures how the media-player-ready time
// degrades during the burst, compares the deployed random-replacement
// mCache against the paper's suggested stability-aware policy (§V-C),
// and shows that continuity stays high throughout (Fig. 9b).
package main

import (
	"fmt"
	"log"
	"os"

	"coolstream"
	"coolstream/internal/metrics"
	"coolstream/internal/sim"
)

func main() {
	warm := 3 * coolstream.Minute
	burst := coolstream.Minute

	table := &metrics.Table{
		Title:  "flash crowd: media-ready time by mCache policy",
		Header: []string{"policy", "phase", "n", "median_s", "p90_s"},
	}
	for _, policy := range []string{"random", "stability"} {
		cfg := coolstream.FlashCrowdConfig(warm, burst, 0.15, 5, 7)
		cfg.MCachePolicy = policy
		cfg.Params.ReportPeriod = 30 * coolstream.Second
		// Keep the membership cache small so the replacement policy
		// is exercised during the burst.
		cfg.Params.BootstrapCandidates = 12
		cfg.Params.MCacheCapacity = 12

		res, err := coolstream.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		w := cfg.Warmup
		windows := [][2]sim.Time{
			{w, w + warm}, // quiet
			{w + warm, w + warm + burst + 30*sim.Second},   // burst
			{w + warm + burst + 30*sim.Second, w + 2*warm}, // recovery
		}
		names := []string{"quiet", "burst", "recovery"}
		for i, s := range res.Analysis.ReadyDelaysInWindows(windows) {
			if s.N() == 0 {
				table.AddRowf("%s\t%s\t0\t-\t-", policy, names[i])
				continue
			}
			table.AddRowf("%s\t%s\t%d\t%.2f\t%.2f",
				policy, names[i], s.N(), s.Median(), s.Quantile(0.9))
		}
		if policy == "random" {
			fmt.Printf("random policy run: %d sessions, peak %d concurrent, mean CI %.4f\n\n",
				res.JoinedSessions, res.PeakConcurrent, res.Analysis.MeanContinuity())
			res.Fig9b(20*sim.Second, 5).Render(os.Stdout)
			fmt.Println()
		}
	}
	table.Render(os.Stdout)
}
