// Livenetwork runs the Coolstreaming data plane over real TCP on
// localhost: a source, two relays, and four leaf peers exchange
// partnership handshakes, buffer maps and block pushes through the
// wire protocol, streaming for a few wall-clock seconds. This is the
// deployable counterpart of the simulator — same buffers, same codec,
// real sockets.
//
// Act two demonstrates self-healing: every node registers with an HTTP
// bootstrap tracker, the leaves run the membership manager and the
// §IV-B adaptation monitor, and then relay-1 dies abruptly (no Leave
// frames, conns just drop). The leaves detect the loss, re-partner via
// mCache gossip and tracker candidates, and re-subscribe the orphaned
// lanes — continuity survives the death of half the relay tier.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"coolstream/internal/buffer"
	"coolstream/internal/netboot"
	"coolstream/internal/netpeer"
)

func main() {
	// 512 kbps in 4 sub-streams of 800-byte blocks: 80 blocks/s.
	layout := buffer.Layout{K: 4, RateBps: 512e3, BlockBytes: 800}
	cfg := func(id int32, upload float64) netpeer.Config {
		return netpeer.Config{
			ID: id, Layout: layout, UploadBps: upload,
			BMPeriod: 250 * time.Millisecond, BufferBlocks: 400, ReadyBlocks: 10,
		}
	}

	// Bootstrap tracker for discovery and re-partnering.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	// Explicit timeouts: a bare http.Server never times a client out.
	hs := &http.Server{
		Handler:           netboot.NewServer(1),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      10 * time.Second,
		IdleTimeout:       time.Minute,
	}
	go hs.Serve(ln)
	defer hs.Close()
	bootURL := "http://" + ln.Addr().String()
	fmt.Printf("bootstrap tracker at %s\n", bootURL)
	client := func(id int32) *netboot.Client {
		return netboot.NewClient(bootURL, &http.Client{Timeout: 2 * time.Second})
	}

	source, err := netpeer.New(cfg(0, 0)) // unlimited origin uplink
	if err != nil {
		log.Fatal(err)
	}
	defer source.Close()
	srcAddr, err := source.Listen()
	if err != nil {
		log.Fatal(err)
	}
	if err := source.StartSource(); err != nil {
		log.Fatal(err)
	}
	if err := client(0).Register(0, srcAddr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("source live at %s (%.0f blocks/s)\n", srcAddr, layout.BlocksPerSecond())
	time.Sleep(400 * time.Millisecond)

	// Two relays with 4R uplinks subscribe to the source.
	var relays []*netpeer.Node
	var relayAddrs []string
	for id := int32(1); id <= 2; id++ {
		r, err := netpeer.New(cfg(id, 4*layout.RateBps))
		if err != nil {
			log.Fatal(err)
		}
		defer r.Close()
		addr, err := r.Listen()
		if err != nil {
			log.Fatal(err)
		}
		if _, err := r.Connect(srcAddr); err != nil {
			log.Fatal(err)
		}
		if err := client(id).Register(id, addr); err != nil {
			log.Fatal(err)
		}
		start := source.Latest(0) - 3
		if start < 0 {
			start = 0
		}
		if err := r.InitBuffers(start); err != nil {
			log.Fatal(err)
		}
		for j := 0; j < layout.K; j++ {
			if err := r.Subscribe(0, j, start); err != nil {
				log.Fatal(err)
			}
		}
		relays = append(relays, r)
		relayAddrs = append(relayAddrs, addr)
	}
	time.Sleep(600 * time.Millisecond)

	// Four leaves split across the relays, sub-streams striped across
	// both (the mesh property: different lanes from different parents).
	// Each leaf runs the self-healing membership manager and the
	// adaptation monitor, so it can survive losing a relay.
	var leaves []*netpeer.Node
	for id := int32(10); id < 14; id++ {
		l, err := netpeer.New(cfg(id, 2*layout.RateBps))
		if err != nil {
			log.Fatal(err)
		}
		defer l.Close()
		leafAddr, err := l.Listen()
		if err != nil {
			log.Fatal(err)
		}
		bc := client(id)
		if err := bc.Register(id, leafAddr); err != nil {
			log.Fatal(err)
		}
		if err := l.EnableMaintenance(netpeer.ManagerConfig{
			TargetPartners: 2,
			Stale:          1200 * time.Millisecond,
			Interval:       200 * time.Millisecond,
			Seed:           uint64(id),
		}, bc); err != nil {
			log.Fatal(err)
		}
		for _, addr := range relayAddrs {
			if _, err := l.Connect(addr); err != nil {
				log.Fatal(err)
			}
		}
		start := relays[0].Latest(0) - 3
		if start < 0 {
			start = 0
		}
		if err := l.InitBuffers(start); err != nil {
			log.Fatal(err)
		}
		for j := 0; j < layout.K; j++ {
			parent := int32(1 + j%2) // stripe lanes across the relays
			if err := l.SubscribeTracked(parent, j, start); err != nil {
				log.Fatal(err)
			}
		}
		l.EnableAdaptation(netpeer.AdaptConfig{
			Ts: 10, Tp: 20, Ta: 500 * time.Millisecond,
			Check: 200 * time.Millisecond, Seed: uint64(id),
		})
		leaves = append(leaves, l)
	}

	fmt.Println("streaming for 4 seconds across 7 real TCP nodes...")
	time.Sleep(4 * time.Second)

	fmt.Printf("\n%-8s %-8s %-12s %-10s\n", "node", "ready", "continuity", "latest[0]")
	for i, r := range relays {
		fmt.Printf("relay-%d  %-8v %-12.3f %d\n", i+1, r.Ready(), r.Continuity(), r.Latest(0))
	}
	for i, l := range leaves {
		fmt.Printf("leaf-%d   %-8v %-12.3f %d\n", i+1, l.Ready(), l.Continuity(), l.Latest(0))
	}

	// --- Act two: relay-1 dies abruptly (no Leave, conns just drop).
	fmt.Println("\nkilling relay-1 abruptly; leaves must re-partner and re-subscribe...")
	relays[0].Abort()
	time.Sleep(3 * time.Second)

	fmt.Printf("\n%-8s %-10s %-12s %-10s %s\n", "node", "partners", "continuity", "latest[0]", "recovery")
	for i, l := range leaves {
		rec := l.Recovery()
		fmt.Printf("leaf-%d   %-10d %-12.3f %-10d replaced=%d stale=%d gossip=%d\n",
			i+1, len(l.Partners()), l.Continuity(), l.Latest(0),
			rec.PartnersReplaced, rec.StaleTeardowns, rec.GossipSent)
	}
	fmt.Printf("\nlive edge: %d blocks per lane\n", source.Latest(0))
}
