// Adaptation walks through the paper's system-dynamics model (§IV-C):
// it evaluates the closed forms of Eqs. (3)-(6) — catch-up time,
// abandon time, the degraded rate under peer competition, and the
// probability of losing a competition — and validates each against a
// fluid micro-simulation, the E10 experiment.
package main

import (
	"fmt"
	"log"
	"os"

	"coolstream"
	"coolstream/internal/analysis"
	"coolstream/internal/metrics"
)

func main() {
	params := coolstream.DefaultParams()
	model, err := analysis.NewModel(params.Layout)
	if err != nil {
		log.Fatal(err)
	}
	layout := params.Layout

	fmt.Printf("stream: %.0f kbps in %d sub-streams of %.0f kbps; block = %d B (%.1f blocks/s per sub-stream)\n\n",
		layout.RateBps/1e3, layout.K, layout.SubRateBps()/1e3,
		layout.BlockBytes, layout.SubBlocksPerSecond())

	// Eq. (3): catch-up, Eq. (4): abandonment — analytic vs fluid.
	t := &metrics.Table{
		Title:  "Eqs. (3)-(4): analytic vs fluid micro-simulation",
		Header: []string{"case", "deficit_blocks", "rate_kbps", "analytic_s", "fluid_s"},
	}
	for _, mult := range []float64{1.5, 2, 3} {
		rate := layout.SubRateBps() * mult
		want, err := model.CatchUpTime(40, rate)
		if err != nil {
			log.Fatal(err)
		}
		got, caught, err := analysis.FluidTransfer(layout, 40, rate, 0.5, 1e12, 0.005, want*3+30)
		if err != nil || !caught {
			log.Fatalf("fluid transfer: %v", err)
		}
		t.AddRowf("catch-up\t40\t%.0f\t%.2f\t%.2f", rate/1e3, want, got)
	}
	for _, mult := range []float64{0.25, 0.5, 0.75} {
		rate := layout.SubRateBps() * mult
		want, err := model.AbandonTime(float64(params.Ts), rate)
		if err != nil {
			log.Fatal(err)
		}
		got, _, err := analysis.FluidTransfer(layout, 0.01, rate, 0.001, float64(params.Ts), 0.005, want*3+30)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRowf("abandon\t%d\t%.0f\t%.2f\t%.2f", params.Ts, rate/1e3, want, got)
	}
	t.Render(os.Stdout)
	fmt.Println()

	// Eq. (5): the degraded per-transmission rate as a parent takes on
	// one more child.
	t5 := &metrics.Table{
		Title:  "Eq. (5): per-transmission rate after accepting one more child",
		Header: []string{"degree_D", "rate_kbps", "fraction_of_R/K"},
	}
	for _, d := range []int{1, 2, 4, 8} {
		r, err := model.DegradedRate(d)
		if err != nil {
			log.Fatal(err)
		}
		t5.AddRowf("%d\t%.1f\t%.3f", d, r/1e3, r/layout.SubRateBps())
	}
	t5.Render(os.Stdout)
	fmt.Println()

	// Eq. (6): probability a child loses the competition within the
	// cool-down Ta — decreasing in parent degree, the mechanism behind
	// peers clogging under high-degree direct/UPnP parents (Fig. 4).
	t6 := &metrics.Table{
		Title:  "Eq. (6): P(lose competition within Ta) vs parent degree",
		Header: []string{"degree_D", "p_lose"},
	}
	ccdf := analysis.UniformDeviationCCDF(float64(params.Ts))
	for _, d := range []int{1, 2, 4, 8, 16} {
		p, err := model.LoseProbability(d, float64(params.Ts), params.Ta.Seconds(), ccdf)
		if err != nil {
			log.Fatal(err)
		}
		t6.AddRowf("%d\t%.3f", d, p)
	}
	t6.Render(os.Stdout)
	fmt.Println("\nconclusion: children of high-degree (direct/UPnP) parents rarely lose —")
	fmt.Println("the overlay converges onto them, which is the paper's Fig. 4 structure.")
}
