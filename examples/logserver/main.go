// Logserver demonstrates the measurement apparatus end to end over
// real HTTP, exactly as deployed: it starts the log server (§V-A),
// replays a simulated broadcast's reports through the HTTP client (the
// role of the ActiveX/JavaScript reporter), and then runs the paper's
// analysis on what the server received.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"os"

	"coolstream"
	"coolstream/internal/logsys"
	"coolstream/internal/metrics"
	"coolstream/internal/netmodel"
)

func main() {
	// 1. Produce a run's worth of peer reports.
	cfg := coolstream.SteadyConfig(0.3, 5*coolstream.Minute, 11)
	cfg.Params.ReportPeriod = 30 * coolstream.Second
	res, err := coolstream.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated run produced %d log records\n", len(res.Records))

	// 2. Start the log server on a loopback port.
	var sink logsys.MemorySink
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: logsys.NewServer(&sink)}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("log server listening at %s\n", base)

	// 3. Replay every record through the HTTP reporter.
	client := logsys.NewClient(base, nil)
	for _, rec := range res.Records {
		if err := client.Report(rec); err != nil {
			log.Fatalf("report failed: %v", err)
		}
	}
	fmt.Printf("replayed %d reports over HTTP; server stored %d\n\n", len(res.Records), sink.Len())

	// 4. Analyse what the server received — identical to the direct
	// in-process analysis.
	a := metrics.Analyze(sink.Records())
	t := &metrics.Table{
		Title:  "analysis of HTTP-collected logs",
		Header: []string{"metric", "value"},
	}
	t.AddRowf("sessions\t%d", len(a.Sessions))
	t.AddRowf("mean_continuity\t%.4f", a.MeanContinuity())
	dist := a.ClassDistribution()
	t.AddRowf("inferred_direct_frac\t%.3f", dist[netmodel.Direct])
	t.AddRowf("inferred_nat_frac\t%.3f", dist[netmodel.NAT])
	t.AddRowf("classifier_accuracy\t%.3f", a.ClassifierAccuracy())
	t.Render(os.Stdout)

	if sink.Len() != len(res.Records) {
		fmt.Println("WARNING: record count mismatch")
		os.Exit(1)
	}
}
