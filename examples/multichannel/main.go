// Multichannel runs the deployment's multi-program reality: several
// simultaneous overlays over a shared engine, Zipf-skewed channel
// popularity, and channel-zapping users who leave one overlay and join
// another. It reports per-channel audience and QoS plus the zap volume.
package main

import (
	"fmt"
	"log"
	"os"

	"coolstream/internal/channels"
	"coolstream/internal/metrics"
	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
	"coolstream/internal/stats"
	"coolstream/internal/xrand"
)

func main() {
	engine := sim.NewEngine(sim.Second)
	cfg := channels.DefaultConfig(42)
	sys, err := channels.New(cfg, engine)
	if err != nil {
		log.Fatal(err)
	}

	// 200 viewers arrive over the first minute; dwell ~60 s, 40% zap.
	prof := netmodel.DefaultCapacityProfile(cfg.Params.Layout.RateBps)
	mix := netmodel.DefaultClassMix().Sampler()
	rng := xrand.New(7)
	dwell := stats.LogNormal{Mu: 4.1, Sigma: 0.6}
	for i := 0; i < 200; i++ {
		i := i
		at := 30*sim.Second + sim.Time(rng.Intn(60))*sim.Second
		engine.Schedule(at, func() {
			class := netmodel.UserClass(mix.Draw(rng))
			sys.SpawnUser(1000+i, prof.Draw(class, rng), dwell, 1)
		})
	}
	engine.Run(8 * sim.Minute)

	fmt.Printf("%d viewers spawned, %d zaps performed, %d watching now\n\n",
		200, sys.Zaps, sys.TotalViewers())

	t := &metrics.Table{
		Title:  "per-channel audience and QoS",
		Header: []string{"channel", "viewers_now", "sessions", "ready", "mean_ci"},
	}
	for k, sink := range sys.Sinks {
		a := metrics.Analyze(sink.Records())
		ready := 0
		for _, s := range a.Sessions {
			if s.Ready() {
				ready++
			}
		}
		ci := "-"
		if v := a.MeanContinuity(); v > 0 {
			ci = fmt.Sprintf("%.4f", v)
		}
		t.AddRowf("%d\t%d\t%d\t%d\t%s",
			k, sys.Worlds[k].ActivePeerCount(), len(a.Sessions), ready, ci)
	}
	t.Render(os.Stdout)
	fmt.Println("\nZipf popularity: channel 0 dominates; zapping keeps churn high in every overlay.")
}
