// Quickstart: run a small steady-state Coolstreaming overlay and print
// the headline measurements — the five-minute tour of the public API.
package main

import (
	"fmt"
	"log"
	"os"

	"coolstream"
)

func main() {
	// A steady trickle of joins (0.3/s) over 8 virtual minutes, on a
	// 6-server tier streaming 768 kbps in 4 sub-streams (Table I).
	cfg := coolstream.SteadyConfig(0.3, 8*coolstream.Minute, 42)
	cfg.Params.ReportPeriod = 30 * coolstream.Second // fast reports for a short run

	res, err := coolstream.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulated %v of virtual time: %d sessions, peak %d concurrent viewers\n\n",
		res.Horizon().Duration(), res.JoinedSessions, res.PeakConcurrent)

	res.Summary().Render(os.Stdout)
	fmt.Println()
	res.Fig6().Render(os.Stdout) // startup delays: the Fig. 6 measurement
	fmt.Println()
	res.Fig8(30 * coolstream.Second).Render(os.Stdout) // continuity by user type
}
