// Eventbroadcast reproduces the paper's headline scenario: a live
// event broadcast over a (compressed) day — the diurnal ramp to an
// evening peak, the 22:00 program-end cliff (Fig. 5), session-level
// performance (Figs. 6, 10) and upload-contribution skew (Fig. 3).
//
// It writes the concurrency series to eventbroadcast.sessions.csv for
// plotting and prints every figure table.
package main

import (
	"fmt"
	"log"
	"os"

	"coolstream"
	"coolstream/internal/sim"
	"coolstream/internal/trace"
)

func main() {
	// A 24 h broadcast day compressed into 30 virtual minutes; the
	// diurnal base rate of 0.6 joins/s peaks at ~3.6 joins/s in the
	// evening flash crowd.
	day := 30 * coolstream.Minute
	cfg := coolstream.DayConfig(day, 0.6, 2006_09_27)

	res, err := coolstream.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("broadcast day (%v compressed): %d sessions, peak %d concurrent\n\n",
		day.Duration(), res.JoinedSessions, res.PeakConcurrent)

	bucket := day / 144
	res.Summary().Render(os.Stdout)
	fmt.Println()
	res.Fig5(bucket).Render(os.Stdout)
	fmt.Println()
	res.Fig3a().Render(os.Stdout)
	fmt.Println()
	res.Fig3b().Render(os.Stdout)
	fmt.Println()
	res.Fig10a().Render(os.Stdout)
	fmt.Println()
	res.Fig10b().Render(os.Stdout)

	// Persist the Fig. 5 series for plotting.
	f, err := os.Create("eventbroadcast.sessions.csv")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	series := res.Analysis.Concurrency(10*sim.Second, res.Horizon())
	if err := trace.WriteSeries(f, "sessions", series); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote eventbroadcast.sessions.csv")
}
