// Benchmarks regenerating every table and figure of the paper's
// evaluation (§V), one benchmark per artifact, plus the ablation
// studies DESIGN.md calls out. Each benchmark runs a scaled-down
// experiment per iteration and reports the headline quantities through
// b.ReportMetric, so `go test -bench=. -benchmem` prints the same
// rows/series the paper reports (in miniature). cmd/coolbench runs the
// full-size versions.
package coolstream_test

import (
	"testing"

	"coolstream"
	"coolstream/internal/analysis"
	"coolstream/internal/buffer"
	"coolstream/internal/channels"
	"coolstream/internal/core"
	"coolstream/internal/metrics"
	"coolstream/internal/microsim"
	"coolstream/internal/netmodel"
	"coolstream/internal/sim"
	"coolstream/internal/stats"
	"coolstream/internal/tree"
	"coolstream/internal/workload"
	"coolstream/internal/xrand"
)

// benchConfig is the shared scaled-down run: ~6 virtual minutes of
// steady arrivals over a small server tier.
func benchConfig(seed uint64) coolstream.Config {
	c := coolstream.SteadyConfig(0.25, 6*coolstream.Minute, seed)
	c.Drain = 30 * coolstream.Second
	c.SnapshotPeriod = 30 * coolstream.Second
	c.Params.ReportPeriod = 30 * coolstream.Second
	return c
}

func mustRun(b *testing.B, cfg coolstream.Config) *coolstream.Result {
	b.Helper()
	res, err := coolstream.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFig3aUserTypes regenerates the user-type distribution
// (Fig. 3a): the log-based classifier's class fractions and its
// accuracy against ground truth.
func BenchmarkFig3aUserTypes(b *testing.B) {
	var res *coolstream.Result
	for i := 0; i < b.N; i++ {
		res = mustRun(b, benchConfig(uint64(i+1)))
	}
	dist := res.Analysis.ClassDistribution()
	b.ReportMetric(dist[netmodel.Direct]+dist[netmodel.UPnP], "reachable_frac")
	b.ReportMetric(dist[netmodel.NAT]+dist[netmodel.Firewall], "unreachable_frac")
	b.ReportMetric(res.Analysis.ClassifierAccuracy(), "classifier_acc")
}

// BenchmarkFig3bUploadContribution regenerates the upload skew
// (Fig. 3b): direct/UPnP peers (~30% of population) should contribute
// the dominant share of upload bytes.
func BenchmarkFig3bUploadContribution(b *testing.B) {
	var res *coolstream.Result
	for i := 0; i < b.N; i++ {
		res = mustRun(b, benchConfig(uint64(i+1)))
	}
	rep := res.Analysis.Contribution()
	b.ReportMetric(rep.ReachablePopulation, "reachable_pop_frac")
	b.ReportMetric(rep.ReachableShare, "reachable_upload_share")
	b.ReportMetric(rep.Top30Share, "top30_upload_share")
	b.ReportMetric(rep.Gini, "gini")
}

// BenchmarkFig4OverlayConvergence regenerates the overlay-structure
// observations (Fig. 4): parent links converge onto direct/UPnP peers
// and NAT↔NAT random links stay rare.
func BenchmarkFig4OverlayConvergence(b *testing.B) {
	var res *coolstream.Result
	for i := 0; i < b.N; i++ {
		res = mustRun(b, benchConfig(uint64(i+1)))
	}
	if len(res.Snapshots) == 0 {
		b.Fatal("no snapshots")
	}
	last := res.Snapshots[len(res.Snapshots)-1]
	b.ReportMetric(last.FractionReachableLinks(), "frac_links_reachable")
	b.ReportMetric(last.FractionRandomLinks(), "frac_random_links")
	b.ReportMetric(last.MeanDepth, "mean_depth")
}

// BenchmarkFig5Sessions regenerates the concurrent-user evolution
// (Fig. 5): diurnal ramp to an evening peak and the 22:00 cliff.
func BenchmarkFig5Sessions(b *testing.B) {
	day := 10 * coolstream.Minute
	var res *coolstream.Result
	for i := 0; i < b.N; i++ {
		cfg := coolstream.DayConfig(day, 0.5, uint64(i+1))
		cfg.Params.ReportPeriod = 30 * coolstream.Second
		res = mustRun(b, cfg)
	}
	conc := res.Analysis.Concurrency(10*sim.Second, res.Horizon())
	at := func(frac float64) float64 {
		target := res.Config.Warmup + sim.Time(float64(day)*frac)
		v := 0.0
		for _, p := range conc {
			if p.At <= target {
				v = p.Value
			}
		}
		return v
	}
	evening, after := at(21.0/24), at(23.5/24)
	b.ReportMetric(float64(res.PeakConcurrent), "peak_users")
	b.ReportMetric(evening, "evening_users")
	b.ReportMetric(safeDiv(after, evening), "post_cliff_ratio")
}

// BenchmarkFig6StartupDelays regenerates the startup-delay CDFs
// (Fig. 6): start-subscription, media-ready, and the buffering wait.
func BenchmarkFig6StartupDelays(b *testing.B) {
	var res *coolstream.Result
	for i := 0; i < b.N; i++ {
		res = mustRun(b, benchConfig(uint64(i+1)))
	}
	sub, ready, diff := res.Analysis.StartupDelays()
	if ready.N() == 0 {
		b.Fatal("no ready sessions")
	}
	b.ReportMetric(sub.Median(), "startsub_median_s")
	b.ReportMetric(ready.Median(), "ready_median_s")
	b.ReportMetric(diff.Median(), "buffering_median_s")
	b.ReportMetric(ready.Quantile(0.9), "ready_p90_s")
}

// BenchmarkFig7ReadyByPeriod regenerates the flash-crowd effect on
// media-ready time (Fig. 7): ready times during the burst window
// exceed the quiet-period baseline.
func BenchmarkFig7ReadyByPeriod(b *testing.B) {
	warm := 3 * coolstream.Minute
	burst := time45s
	var res *coolstream.Result
	for i := 0; i < b.N; i++ {
		cfg := coolstream.FlashCrowdConfig(warm, burst, 0.15, 4, uint64(i+1))
		cfg.Params.ReportPeriod = 30 * coolstream.Second
		res = mustRun(b, cfg)
	}
	w := res.Config.Warmup
	windows := [][2]sim.Time{
		{w, w + warm},                          // quiet
		{w + warm, w + warm + burst + time45s}, // burst + aftermath
	}
	samples := res.Analysis.ReadyDelaysInWindows(windows)
	if samples[0].N() == 0 || samples[1].N() == 0 {
		b.Skip("windows unpopulated at this scale")
	}
	b.ReportMetric(samples[0].Median(), "quiet_ready_median_s")
	b.ReportMetric(samples[1].Median(), "burst_ready_median_s")
	b.ReportMetric(safeDiv(samples[1].Mean(), samples[0].Mean()), "burst_over_quiet")
}

const time45s = 45 * sim.Second

// BenchmarkFig8ContinuityByType regenerates the continuity-by-class
// comparison (Fig. 8): all classes high; NAT's *reported* continuity
// not lower than direct's (the reporting-bias artifact).
func BenchmarkFig8ContinuityByType(b *testing.B) {
	var res *coolstream.Result
	for i := 0; i < b.N; i++ {
		res = mustRun(b, benchConfig(uint64(i+1)))
	}
	means := res.Analysis.MeanContinuityByClass()
	b.ReportMetric(means[netmodel.Direct], "ci_direct")
	b.ReportMetric(means[netmodel.NAT], "ci_nat")
	b.ReportMetric(res.Analysis.MeanContinuity(), "ci_overall")
}

// BenchmarkFig9Scalability regenerates Fig. 9: mean continuity across
// a 4× span of system sizes and join rates stays flat and high.
func BenchmarkFig9Scalability(b *testing.B) {
	var ciLow, ciHigh float64
	var peakLow, peakHigh int
	for i := 0; i < b.N; i++ {
		low := benchConfig(uint64(i + 1))
		high := benchConfig(uint64(i + 1))
		high.Workload.Profile = workload.Constant(1.0)
		high.Servers = 10
		resLow := mustRun(b, low)
		resHigh := mustRun(b, high)
		ciLow, ciHigh = resLow.Analysis.MeanContinuity(), resHigh.Analysis.MeanContinuity()
		peakLow, peakHigh = resLow.PeakConcurrent, resHigh.PeakConcurrent
	}
	b.ReportMetric(float64(peakLow), "size_low")
	b.ReportMetric(float64(peakHigh), "size_high")
	b.ReportMetric(ciLow, "ci_at_low")
	b.ReportMetric(ciHigh, "ci_at_high")
}

// BenchmarkFig10Sessions regenerates the session-duration distribution
// and the join-retry distribution (Fig. 10).
func BenchmarkFig10Sessions(b *testing.B) {
	var res *coolstream.Result
	for i := 0; i < b.N; i++ {
		res = mustRun(b, benchConfig(uint64(i+1)))
	}
	// The workload compresses time 10×, so the paper's 1-minute cutoff
	// is 6 virtual seconds here.
	b.ReportMetric(res.Analysis.ShortSessionFraction(6*sim.Second), "short_session_frac")
	dist := res.Analysis.RetryDistribution(5)
	b.ReportMetric(dist[0], "users_zero_retries")
	b.ReportMetric(1-dist[0], "users_with_retries")
}

// BenchmarkEq36AnalyticModel validates Eqs. (3)-(6) against fluid
// micro-simulations across a sweep of rates and degrees (E10).
func BenchmarkEq36AnalyticModel(b *testing.B) {
	layout := buffer.Layout{K: 4, RateBps: 768e3, BlockBytes: 12000}
	m, err := analysis.NewModel(layout)
	if err != nil {
		b.Fatal(err)
	}
	maxRelErr := 0.0
	for i := 0; i < b.N; i++ {
		maxRelErr = 0
		r := xrand.New(uint64(i + 1))
		for trial := 0; trial < 20; trial++ {
			l := 10 + r.Float64()*50
			rate := layout.SubRateBps() * (1.3 + 2*r.Float64())
			want, err := m.CatchUpTime(l, rate)
			if err != nil {
				b.Fatal(err)
			}
			got, caught, err := analysis.FluidTransfer(layout, l, rate, 0.5, 1e12, 0.005, want*3+30)
			if err != nil || !caught {
				b.Fatalf("fluid transfer failed: %v", err)
			}
			if rel := abs(got-want) / want; rel > maxRelErr {
				maxRelErr = rel
			}
		}
	}
	b.ReportMetric(maxRelErr, "max_rel_err_eq3")
	// Eq. (6) monotonicity: P(lose) decreasing in parent degree.
	p2, _ := m.LoseProbability(2, 20, 20, analysis.UniformDeviationCCDF(20))
	p8, _ := m.LoseProbability(8, 20, 20, analysis.UniformDeviationCCDF(20))
	b.ReportMetric(p2, "plose_d2")
	b.ReportMetric(p8, "plose_d8")
}

// BenchmarkAblationTreeVsMesh compares the data-driven mesh against
// the single-tree baseline under identical churn (E11).
func BenchmarkAblationTreeVsMesh(b *testing.B) {
	var meshCI, treeCI float64
	for i := 0; i < b.N; i++ {
		seed := uint64(i + 1)
		// Mesh: steady churny population.
		cfg := benchConfig(seed)
		res := mustRun(b, cfg)
		meshCI = res.Analysis.MeanContinuity()

		// Tree: same arrival/departure pattern, slow repair. The root's
		// fan-out matches the mesh's server-tier capacity (6 servers ×
		// ~25R upload ≈ 150 full-stream slots would be generous; a real
		// tree source forwards each stream copy once, so use the
		// per-stream budget: ServerUpload/R children per server).
		tp := tree.DefaultParams()
		tp.RepairDelay = 10 * sim.Second
		tp.BufferSeconds = 5
		tp.RootDegree = 12
		engine := sim.NewEngine(sim.Second)
		o, err := tree.NewOverlay(tp, engine, seed)
		if err != nil {
			b.Fatal(err)
		}
		r := xrand.New(seed)
		for _, spec := range res.Scenario.Specs {
			spec := spec
			up := spec.Endpoint.UploadBps
			engine.Schedule(cfg.Warmup+spec.At, func() {
				id := o.Join(up)
				leaveAt := cfg.Warmup + spec.At + spec.Watch
				engine.Schedule(leaveAt, func() { o.Leave(id) })
			})
		}
		_ = r
		engine.Run(cfg.Horizon())
		treeCI = o.Continuity()
	}
	b.ReportMetric(meshCI, "mesh_continuity")
	b.ReportMetric(treeCI, "tree_continuity")
	b.ReportMetric(meshCI-treeCI, "mesh_advantage")
}

// BenchmarkAblationMCachePolicy compares the deployed random-replace
// mCache against the paper's suggested stability-aware policy under a
// flash crowd (E12).
func BenchmarkAblationMCachePolicy(b *testing.B) {
	var randomMedian, stabilityMedian float64
	for i := 0; i < b.N; i++ {
		seed := uint64(i + 1)
		for _, policy := range []string{"random", "stability"} {
			cfg := coolstream.FlashCrowdConfig(2*coolstream.Minute, time45s, 0.15, 3, seed)
			cfg.MCachePolicy = policy
			cfg.Params.ReportPeriod = 30 * coolstream.Second
			// Pressure the mCache so the replacement policy actually
			// acts during the burst.
			cfg.Params.BootstrapCandidates = 12
			cfg.Params.MCacheCapacity = 12
			res := mustRun(b, cfg)
			_, ready, _ := res.Analysis.StartupDelays()
			if ready.N() == 0 {
				b.Skip("no ready sessions at this scale")
			}
			if policy == "random" {
				randomMedian = ready.Median()
			} else {
				stabilityMedian = ready.Median()
			}
		}
	}
	b.ReportMetric(randomMedian, "ready_median_random_s")
	b.ReportMetric(stabilityMedian, "ready_median_stability_s")
}

// BenchmarkResourceIndexCritical sweeps the system-wide resource index
// across the Kumar/Ross critical value the paper invokes in §V-E
// (E13): continuity collapses once upload supply falls below demand.
func BenchmarkResourceIndexCritical(b *testing.B) {
	var starvedCI, starvedIdx, richCI, richIdx float64
	for i := 0; i < b.N; i++ {
		seed := uint64(i + 1)
		for _, scale := range []float64{0.15, 3} {
			cfg := core.ResourceSweepConfig(scale, seed)
			cfg.Workload.Horizon = 6 * coolstream.Minute
			cfg.Drain = 30 * coolstream.Second
			cfg.Params.ReportPeriod = 30 * coolstream.Second
			res, err := core.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if scale < 1 {
				starvedCI = res.Analysis.MeanContinuity()
				starvedIdx = res.MeanResourceIndex(5)
			} else {
				richCI = res.Analysis.MeanContinuity()
				richIdx = res.MeanResourceIndex(5)
			}
		}
	}
	b.ReportMetric(starvedIdx, "index_starved")
	b.ReportMetric(starvedCI, "ci_starved")
	b.ReportMetric(richIdx, "index_rich")
	b.ReportMetric(richCI, "ci_rich")
}

// BenchmarkAblationAllocator compares the need-aware water-filling
// upload allocator against the paper's literal Eq. (5) equal split
// (E14): redistribution of surplus to catching-up children should
// never hurt and typically speeds startup.
func BenchmarkAblationAllocator(b *testing.B) {
	var wfCI, esCI, wfReady, esReady float64
	for i := 0; i < b.N; i++ {
		seed := uint64(i + 1)
		for _, alloc := range []string{"waterfill", "equalsplit"} {
			cfg := benchConfig(seed)
			cfg.Params.Allocator = alloc
			res := mustRun(b, cfg)
			_, ready, _ := res.Analysis.StartupDelays()
			if ready.N() == 0 {
				b.Skip("no ready sessions")
			}
			if alloc == "waterfill" {
				wfCI, wfReady = res.Analysis.MeanContinuity(), ready.Median()
			} else {
				esCI, esReady = res.Analysis.MeanContinuity(), ready.Median()
			}
		}
	}
	b.ReportMetric(wfCI, "ci_waterfill")
	b.ReportMetric(esCI, "ci_equalsplit")
	b.ReportMetric(wfReady, "ready_median_waterfill_s")
	b.ReportMetric(esReady, "ready_median_equalsplit_s")
}

// BenchmarkE15BlockFluidCrossValidation replays a two-hop catch-up at
// full block granularity (internal/microsim: real sync buffers, wire
// codec, per-parent transmission queues) and compares the completion
// time against the fluid trajectory the large-scale engine uses.
func BenchmarkE15BlockFluidCrossValidation(b *testing.B) {
	layout := buffer.Layout{K: 4, RateBps: 768e3, BlockBytes: 12000}
	var microT, fluidT float64
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine(sim.Second)
		s, err := microsim.NewSystem(layout, e, 240)
		if err != nil {
			b.Fatal(err)
		}
		e.Run(60 * sim.Second)
		relay, err := s.AddNode(1, 3*layout.RateBps, []int{microsim.SourceID, microsim.SourceID, microsim.SourceID, microsim.SourceID}, 60, 20)
		if err != nil {
			b.Fatal(err)
		}
		e.Run(90 * sim.Second)
		deficit := int64(24)
		child, err := s.AddNode(2, layout.RateBps, []int{1, 1, 1, 1}, relay.Latest(0)-deficit, 1<<40)
		if err != nil {
			b.Fatal(err)
		}
		joinAt := e.Now()
		fluidT, _, err = analysis.FluidTransfer(layout, float64(deficit), 3*layout.RateBps/4, 1, 1e12, 0.005, 300)
		if err != nil {
			b.Fatal(err)
		}
		for step := 0; step < 300; step++ {
			e.Run(e.Now() + sim.Second)
			live := int64(layout.GlobalAt(e.Now())) / int64(layout.K)
			if live-child.Latest(0) <= 1 {
				microT = (e.Now() - joinAt).Seconds()
				break
			}
		}
	}
	b.ReportMetric(microT, "block_level_s")
	b.ReportMetric(fluidT, "fluid_s")
	b.ReportMetric(abs(microT-fluidT), "abs_diff_s")
}

// BenchmarkE16ControlLossRobustness injects control-plane message loss
// (lost handshakes, stale buffer maps) and measures graceful
// degradation: continuity and startup hold at moderate loss.
func BenchmarkE16ControlLossRobustness(b *testing.B) {
	var ciClean, ciLossy, readyClean, readyLossy float64
	for i := 0; i < b.N; i++ {
		seed := uint64(i + 1)
		for _, loss := range []float64{0, 0.3} {
			cfg := benchConfig(seed)
			cfg.Params.ControlLossProb = loss
			res := mustRun(b, cfg)
			_, ready, _ := res.Analysis.StartupDelays()
			if ready.N() == 0 {
				b.Skip("no ready sessions")
			}
			if loss == 0 {
				ciClean, readyClean = res.Analysis.MeanContinuity(), ready.Median()
			} else {
				ciLossy, readyLossy = res.Analysis.MeanContinuity(), ready.Median()
			}
		}
	}
	b.ReportMetric(ciClean, "ci_no_loss")
	b.ReportMetric(ciLossy, "ci_30pct_loss")
	b.ReportMetric(readyClean, "ready_median_no_loss_s")
	b.ReportMetric(readyLossy, "ready_median_30pct_loss_s")
}

// BenchmarkE17PeerwiseAndStability exercises the paper's §VI
// future-work analyses the reproduced log system makes possible:
// per-peer continuity distribution (bottleneck identification) and
// overlay stability (partnership changes per report interval).
func BenchmarkE17PeerwiseAndStability(b *testing.B) {
	var res *coolstream.Result
	for i := 0; i < b.N; i++ {
		res = mustRun(b, benchConfig(uint64(i+1)))
	}
	pw := res.Analysis.Peerwise(0.95)
	if pw.SessionCI.N() == 0 {
		b.Fatal("no per-session CI")
	}
	b.ReportMetric(pw.SessionCI.Median(), "session_ci_median")
	b.ReportMetric(pw.BottleneckFrac, "bottleneck_frac")
	st := res.Analysis.Stability()
	b.ReportMetric(st.ChangesPerReport.Mean(), "partner_changes_per_report")
}

// BenchmarkE18ParentSelection tests the paper's headline design claim:
// randomized parent selection vs greedy freshest-first. Greedy
// selection concentrates children on the freshest (typically server)
// peers, inviting the §IV-B peer-competition chain reactions.
func BenchmarkE18ParentSelection(b *testing.B) {
	var ciRandom, ciGreedy, depthRandom, depthGreedy float64
	for i := 0; i < b.N; i++ {
		seed := uint64(i + 1)
		for _, sel := range []string{"random", "freshest"} {
			cfg := benchConfig(seed)
			// Stress the freshest peers: a thin server tier and real
			// load, so piling onto the best advertisers backfires.
			cfg.Workload.Profile = workload.Constant(0.8)
			cfg.Servers = 2
			cfg.ServerUploadBps = 8 * cfg.Params.Layout.RateBps
			cfg.Params.ParentSelection = sel
			res := mustRun(b, cfg)
			if len(res.Snapshots) == 0 {
				b.Fatal("no snapshots")
			}
			last := res.Snapshots[len(res.Snapshots)-1]
			if sel == "random" {
				ciRandom, depthRandom = res.Analysis.MeanContinuity(), last.MeanDepth
			} else {
				ciGreedy, depthGreedy = res.Analysis.MeanContinuity(), last.MeanDepth
			}
		}
	}
	b.ReportMetric(ciRandom, "ci_random")
	b.ReportMetric(ciGreedy, "ci_greedy")
	b.ReportMetric(depthRandom, "depth_random")
	b.ReportMetric(depthGreedy, "depth_greedy")
}

// BenchmarkE19MultiChannel runs the multi-program deployment: Zipf
// channel popularity, zapping users, per-channel overlays on one
// engine.
func BenchmarkE19MultiChannel(b *testing.B) {
	var zaps int
	var topSessions, bottomSessions int
	var ciWorst float64
	for i := 0; i < b.N; i++ {
		engine := sim.NewEngine(sim.Second)
		sys, err := channels.New(channels.DefaultConfig(uint64(i+1)), engine)
		if err != nil {
			b.Fatal(err)
		}
		prof := netmodel.DefaultCapacityProfile(768e3)
		rng := xrand.New(uint64(i + 100))
		dwell := stats.LogNormal{Mu: 4.1, Sigma: 0.6}
		for u := 0; u < 120; u++ {
			u := u
			at := 30*sim.Second + sim.Time(rng.Intn(60))*sim.Second
			engine.Schedule(at, func() {
				class := netmodel.UserClass(rng.Intn(netmodel.NumClasses))
				sys.SpawnUser(1000+u, prof.Draw(class, rng), dwell, 1)
			})
		}
		engine.Run(6 * coolstream.Minute)
		zaps = sys.Zaps
		ciWorst = 1
		counts := make([]int, len(sys.Sinks))
		for k, sink := range sys.Sinks {
			a := metrics.Analyze(sink.Records())
			counts[k] = len(a.Sessions)
			if ci := a.MeanContinuity(); ci > 0 && ci < ciWorst {
				ciWorst = ci
			}
		}
		topSessions, bottomSessions = counts[0], counts[len(counts)-1]
	}
	b.ReportMetric(float64(zaps), "zaps")
	b.ReportMetric(float64(topSessions), "sessions_top_channel")
	b.ReportMetric(float64(bottomSessions), "sessions_bottom_channel")
	b.ReportMetric(ciWorst, "worst_channel_ci")
}

// BenchmarkE20StartupParameterSweep studies the Table I design knobs
// the paper motivates in §IV-A: the join shift Tp trades startup
// safety against staleness, and the startup buffer trades ready time
// against early-playback risk.
func BenchmarkE20StartupParameterSweep(b *testing.B) {
	var readyShortTp, readyLongTp, ciShortTp, ciLongTp float64
	for i := 0; i < b.N; i++ {
		seed := uint64(i + 1)
		for _, tp := range []int64{10, 80} {
			cfg := benchConfig(seed)
			cfg.Params.Tp = tp
			if cfg.Params.Ts > tp {
				cfg.Params.Ts = tp // keep Ts <= Tp sensible
			}
			res := mustRun(b, cfg)
			_, ready, _ := res.Analysis.StartupDelays()
			if ready.N() == 0 {
				b.Skip("no ready sessions")
			}
			if tp == 10 {
				readyShortTp, ciShortTp = ready.Median(), res.Analysis.MeanContinuity()
			} else {
				readyLongTp, ciLongTp = ready.Median(), res.Analysis.MeanContinuity()
			}
		}
	}
	b.ReportMetric(readyShortTp, "ready_median_tp10_s")
	b.ReportMetric(readyLongTp, "ready_median_tp80_s")
	b.ReportMetric(ciShortTp, "ci_tp10")
	b.ReportMetric(ciLongTp, "ci_tp80")
}

// BenchmarkE21PushVsPull compares this paper's push sub-stream
// delivery against the original DONet v1 receiver-driven pull
// scheduler on an identical block-level topology: the design change
// the measured system embodies.
func BenchmarkE21PushVsPull(b *testing.B) {
	layout := buffer.Layout{K: 4, RateBps: 768e3, BlockBytes: 12000}
	var pushReady, pullReady float64
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine(sim.Second)
		s, err := microsim.NewSystem(layout, e, 240)
		if err != nil {
			b.Fatal(err)
		}
		e.Run(30 * sim.Second)
		src := []int{microsim.SourceID, microsim.SourceID, microsim.SourceID, microsim.SourceID}
		relay, err := s.AddNode(1, 4*layout.RateBps, src, 30, 10)
		if err != nil {
			b.Fatal(err)
		}
		e.Run(60 * sim.Second)
		start := relay.Latest(0) - 20
		push, err := s.AddNode(2, layout.RateBps, []int{1, 1, 1, 1}, start, 15)
		if err != nil {
			b.Fatal(err)
		}
		pull, err := s.AddPullNode(3, layout.RateBps, []int{1, 1, 1, 1}, start, 15,
			microsim.PullConfig{SchedPeriod: sim.Second, Window: 40, ReqDelay: 100 * sim.Millisecond})
		if err != nil {
			b.Fatal(err)
		}
		joinAt := e.Now()
		e.Run(e.Now() + 2*sim.Minute)
		pushReady = (push.ReadyAt() - joinAt).Seconds()
		pullReady = (pull.ReadyAt() - joinAt).Seconds()
	}
	b.ReportMetric(pushReady, "push_ready_s")
	b.ReportMetric(pullReady, "pull_ready_s")
	b.ReportMetric(pullReady-pushReady, "pull_penalty_s")
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
